"""The forward-backward unknowns analysis: switch cascade, sampling,
goal folding, and static unit/pair/empty-family refutation on synthetic
templates (the real suite templates are deliberately permissive, so the
refutation paths need constructed cases)."""

import pytest

from repro.analysis.fwdbwd import (
    ENV_FLAG,
    analyze_unknowns,
    fold_goal,
    fwdbwd_enabled,
    sample_state,
)
from repro.lang import ast
from repro.lang.ast import Sort, Var
from repro.lang.parser import parse_expr, parse_program
from repro.pins.spec import InversionSpec
from repro.pins.template import HoleSpace
from repro.symexec.paths import Def

INT = Sort.INT

FWD = parse_program("""
program fwd [int n; int s] {
  in(n);
  assume(n >= 0);
  assume(n <= 10);
  s := n + 1;
  out(s);
}
""")

INV_TEMPLATE = parse_program("""
program fwd_inv [int s; int np] {
  np := [e1];
  out(np);
}
""")

SPEC = InversionSpec(scalar_pairs=(("n", "np"),))
SORTS = {"n": INT, "s": INT, "np": INT}


def space_with(cands):
    return HoleSpace(expr_holes=(("e1", tuple(parse_expr(c) for c in cands)),),
                     pred_holes=())


# -- the switch ---------------------------------------------------------------


def test_fwdbwd_enabled_cascade(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    # Follows the absint switch when nothing else is set.
    assert fwdbwd_enabled(None, absint=True) is True
    assert fwdbwd_enabled(None, absint=False) is False
    monkeypatch.setenv(ENV_FLAG, "0")
    assert fwdbwd_enabled(None, absint=True) is False
    monkeypatch.setenv(ENV_FLAG, "on")
    assert fwdbwd_enabled(None, absint=False) is True
    # An explicit override always wins.
    assert fwdbwd_enabled(False, absint=True) is False
    monkeypatch.setenv(ENV_FLAG, "0")
    assert fwdbwd_enabled(True, absint=False) is True


# -- constraint-directed concretization ---------------------------------------


def test_sample_state_respects_relational_guards():
    sorts = {"m": INT, "mp": INT}
    preds = [ast.ge(Var("m#0"), ast.n(3)),
             ast.le(Var("m#0"), ast.n(5)),
             ast.lt(Var("mp#0"), Var("m#0")),
             ast.ge(Var("mp#0"), ast.n(0))]
    picks = sample_state(preds, sorts)
    assert picks is not None
    assert 3 <= picks["m"] <= 5
    assert 0 <= picks["mp"] < picks["m"]


def test_sample_state_detects_abstract_unsat():
    sorts = {"x": INT}
    preds = [ast.ge(Var("x#0"), ast.n(5)), ast.le(Var("x#0"), ast.n(3))]
    assert sample_state(preds, sorts) is None


# -- backward goal folding ----------------------------------------------------


def test_fold_goal_decides_rank_delta():
    # rank = m - mp; body sets mp#1 = mp#0 + 1, so the negated decrease
    # goal (new rank >= old rank) folds to a constant False.
    items = (Def("mp", 1, ast.add(Var("mp#0"), ast.n(1))),)
    neg_goal = ast.ge(ast.sub(Var("m#0"), Var("mp#1")),
                      ast.sub(Var("m#0"), Var("mp#0")))
    assert fold_goal(items, neg_goal, {}) is False
    # The satisfied direction folds True; an unrelated goal stays None.
    goal = ast.lt(ast.sub(Var("m#0"), Var("mp#1")),
                  ast.sub(Var("m#0"), Var("mp#0")))
    assert fold_goal(items, goal, {}) is True
    open_goal = ast.lt(Var("m#0"), Var("k#0"))
    assert fold_goal(items, open_goal, {}) is None


def test_fold_goal_substitutes_hole_expressions():
    hole = ast.HoleExpr("e9", vmap=(("s", 0),))
    items = (Def("x", 1, ast.add(hole, ast.n(0))),)
    neg = ast.ne(Var("x#1"), ast.add(Var("s#0"), ast.n(2)))
    expr_map = {"e9": parse_expr("s + 2")}
    assert fold_goal(items, neg, expr_map) is False


# -- static unit refutation ---------------------------------------------------


def test_analyze_unknowns_refutes_out_of_range_candidate():
    # Boundary: s = n + 1 in [1, 11]; necessary np = n in [0, 10].
    # "0 - s" can only produce [-11, -1] -> statically refuted.
    space = space_with(["s - 1", "0 - s", "s + 1"])
    report = analyze_unknowns(FWD, INV_TEMPLATE, space, SPEC, SORTS)
    fs = report.feasible["e1"]
    assert fs.kind == "expr" and fs.total == 3
    assert list(fs.feasible) == [0, 2]
    assert report.units_refuted == 1
    assert report.refuted_units() == [("e1", 1)]
    assert "0 - s" in report.refuted_exprs["e1"][0].__str__() \
        or str(report.refuted_exprs["e1"][0])
    assert not report.empty_holes()
    assert "refuted" in report.describe()


def test_analyze_unknowns_empty_family():
    space = space_with(["0 - s", "0 - s - 1"])
    report = analyze_unknowns(FWD, INV_TEMPLATE, space, SPEC, SORTS)
    assert report.empty_holes() == ["e1"]
    assert report.feasible["e1"].empty
    assert report.units_refuted == 2


def test_analyze_unknowns_keeps_feasible_space_untouched():
    space = space_with(["s - 1", "s", "0"])
    report = analyze_unknowns(FWD, INV_TEMPLATE, space, SPEC, SORTS)
    assert list(report.feasible["e1"].feasible) == [0, 1, 2]
    assert report.units_refuted == 0 and not report.pairs
    assert "no candidate statically refuted" in report.describe()


def test_report_allows_blocks_refuted_solutions():
    from repro.pins.template import Solution

    space = space_with(["s - 1", "0 - s"])
    report = analyze_unknowns(FWD, INV_TEMPLATE, space, SPEC, SORTS)
    good = Solution(exprs=(("e1", parse_expr("s - 1")),), preds=())
    bad = Solution(exprs=(("e1", parse_expr("0 - s")),), preds=())
    assert report.allows(good)
    assert not report.allows(bad)


def test_analyze_unknowns_skips_non_top_level_sites():
    # The same doomed candidate inside a conditional is NOT refutable:
    # the branch may simply never run.
    inv = parse_program("""
    program fwd_inv [int s; int np] {
      np := s - 1;
      if (s > 100) { np := [e1]; }
      out(np);
    }
    """)
    space = space_with(["0 - s"])
    report = analyze_unknowns(FWD, inv, space, SPEC, SORTS)
    assert report.units_refuted == 0
    assert list(report.feasible["e1"].feasible) == [0]


# -- pairwise refinement ------------------------------------------------------


def test_analyze_unknowns_refutes_pairs():
    # a in {0, 5}; np = a + b-candidates.  Under a = 0 the candidate
    # "a - 1" lands at -1, outside the necessary [0, 10]; under a = 5
    # it is fine.  So (ea=0, eb="a - 1") dies as a *pair*, not a unit.
    inv = parse_program("""
    program fwd_inv [int s; int a; int np] {
      a := [ea];
      np := [eb];
      out(np);
    }
    """)
    space = HoleSpace(
        expr_holes=(("ea", (parse_expr("0"), parse_expr("5"))),
                    ("eb", (parse_expr("a - 1"), parse_expr("a")))),
        pred_holes=())
    sorts = {"n": INT, "s": INT, "a": INT, "np": INT}
    report = analyze_unknowns(FWD, inv, space, sorts=sorts, spec=SPEC)
    assert report.units_refuted == 0
    refuted = report.refuted_pairs()
    assert (("ea", 0), ("eb", 0)) in refuted
    assert (("ea", 1), ("eb", 0)) not in refuted
    assert (("ea", 1), ("eb", 1)) not in refuted
