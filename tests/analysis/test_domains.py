"""Property tests for the reduced-product abstract domains.

Three families, all seeded and deterministic:

* **lattice laws** — join/meet/leq/widen/narrow obey the usual order
  theory on randomly generated elements;
* **transfer soundness** — for finite concrete sets ``S``, ``T`` and
  their abstractions, every ``x OP y`` lands in the abstract result and
  every decided comparison matches the concrete truth (the Galois
  condition at the operator level);
* **widening termination** — any chain interleaved with ``widen``
  stabilizes in a small bounded number of steps.
"""

import random

import pytest

from repro.analysis.domains import (
    AbsVal,
    Congruence,
    Interval,
    Sign,
    binop,
    cmp_values,
    refine_cmp,
)
from repro.lang.ast import ArithOp, CmpOp

OPS = [ArithOp.ADD, ArithOp.SUB, ArithOp.MUL, ArithOp.DIV, ArithOp.MOD]
CMPS = [CmpOp.EQ, CmpOp.NE, CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE]

CONCRETE = {
    ArithOp.ADD: lambda a, b: a + b,
    ArithOp.SUB: lambda a, b: a - b,
    ArithOp.MUL: lambda a, b: a * b,
    ArithOp.DIV: lambda a, b: a // b if b != 0 else None,
    ArithOp.MOD: lambda a, b: a % b if b != 0 else None,
}

CMP_CONCRETE = {
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


def random_val(rng: random.Random) -> AbsVal:
    """A random non-bottom abstract value, biased toward small shapes."""
    kind = rng.randrange(4)
    if kind == 0:
        return AbsVal.TOP
    if kind == 1:
        return AbsVal.const(rng.randint(-12, 12))
    lo = rng.randint(-12, 12)
    hi = lo + rng.randint(0, 10)
    iv = Interval(None if rng.random() < 0.15 else lo,
                  None if rng.random() < 0.15 else hi)
    val = AbsVal.make(iv)
    if kind == 3:
        m = rng.randint(2, 5)
        val = val.meet(AbsVal.make(Interval.TOP,
                                   Congruence.make(m, rng.randrange(m))))
    return val if not val.is_bottom else AbsVal.TOP


def abstract_of(values) -> AbsVal:
    """The join of constants: the least abstraction containing ``values``."""
    out = AbsVal.BOT
    for v in values:
        out = out.join(AbsVal.const(v))
    return out


def members(val: AbsVal, window=range(-40, 41)):
    return [n for n in window if val.contains(n)]


def equivalent(a: AbsVal, b: AbsVal) -> bool:
    return a.leq(b) and b.leq(a)


# -- lattice laws -----------------------------------------------------------


def test_lattice_laws_random():
    rng = random.Random(7)
    for _ in range(300):
        a, b, c = (random_val(rng) for _ in range(3))
        j = a.join(b)
        assert a.leq(j) and b.leq(j), (str(a), str(b), str(j))
        assert equivalent(j, b.join(a))
        m = a.meet(b)
        assert m.leq(a) and m.leq(b)
        # Absorption-ish: meet with an upper bound is a no-op.
        assert a.meet(j).leq(a)
        # leq is transitive through the join.
        assert a.leq(j.join(c))
        # Widen over-approximates join; narrow stays between.
        w = a.widen(b)
        assert j.leq(w)
        n = w.narrow(j)
        assert j.leq(n) and n.leq(w)


def test_bot_top_identities():
    rng = random.Random(8)
    for _ in range(50):
        a = random_val(rng)
        assert equivalent(AbsVal.BOT.join(a), a)
        assert AbsVal.BOT.leq(a)
        assert a.leq(AbsVal.TOP)
        assert equivalent(a.meet(AbsVal.TOP), a)
        assert a.meet(AbsVal.BOT).is_bottom


def test_membership_preserved_by_join_meet():
    rng = random.Random(9)
    for _ in range(200):
        a, b = random_val(rng), random_val(rng)
        for n in members(a, range(-15, 16)):
            assert a.join(b).contains(n)
            if b.contains(n):
                assert a.meet(b).contains(n)


# -- transfer soundness (Galois condition on operators) ---------------------


def test_binop_soundness_random():
    rng = random.Random(17)
    for _ in range(400):
        xs = [rng.randint(-10, 10) for _ in range(rng.randint(1, 4))]
        ys = [rng.randint(-10, 10) for _ in range(rng.randint(1, 4))]
        a, b = abstract_of(xs), abstract_of(ys)
        op = rng.choice(OPS)
        result = binop(op, a, b)
        for x in xs:
            for y in ys:
                concrete = CONCRETE[op](x, y)
                if concrete is None:
                    continue  # concrete raises: contributes no state
                assert result.contains(concrete), (
                    f"{x} {op.value} {y} = {concrete} not in "
                    f"{result} (a={a}, b={b})")


def test_cmp_soundness_random():
    rng = random.Random(23)
    for _ in range(400):
        xs = [rng.randint(-8, 8) for _ in range(rng.randint(1, 4))]
        ys = [rng.randint(-8, 8) for _ in range(rng.randint(1, 4))]
        a, b = abstract_of(xs), abstract_of(ys)
        op = rng.choice(CMPS)
        decided = cmp_values(op, a, b)
        if decided is None:
            continue
        for x in xs:
            for y in ys:
                assert CMP_CONCRETE[op](x, y) == decided, (
                    f"cmp {op.value} decided {decided} but "
                    f"{x} {op.value} {y} differs")


def test_refine_cmp_keeps_satisfying_pairs():
    rng = random.Random(31)
    for _ in range(400):
        xs = [rng.randint(-8, 8) for _ in range(rng.randint(1, 4))]
        ys = [rng.randint(-8, 8) for _ in range(rng.randint(1, 4))]
        a, b = abstract_of(xs), abstract_of(ys)
        op = rng.choice(CMPS)
        ra, rb = refine_cmp(op, a, b)
        for x in xs:
            for y in ys:
                if CMP_CONCRETE[op](x, y):
                    assert ra.contains(x), (op, x, y, str(a), str(ra))
                    assert rb.contains(y), (op, x, y, str(b), str(rb))


def test_congruence_mul_stride():
    four = binop(ArithOp.MUL, AbsVal.TOP, AbsVal.const(4))
    assert four.congruence.modulus == 4
    assert not four.contains(6) or four.congruence.modulus == 1


# -- widening termination ---------------------------------------------------


def test_widening_chains_terminate():
    rng = random.Random(41)
    for _ in range(100):
        current = random_val(rng)
        steps = 0
        while True:
            nxt = current.widen(current.join(random_val(rng)))
            steps += 1
            if nxt.leq(current):
                break
            current = nxt
            assert steps < 40, "widening chain failed to stabilize"


def test_interval_widen_jumps_thresholds():
    a = Interval(0, 1)
    b = Interval(0, 2)
    w = a.widen(b)
    assert w.lo == 0 and w.hi is not None and w.hi >= 2


def test_sign_and_congruence_consts():
    assert Sign.of_interval(Interval(1, 9)).mask == 4  # strictly positive
    assert Congruence.const(6).meet(Congruence.make(4, 2)).as_const() == 6
    assert Congruence.const(5).meet(Congruence.make(4, 2)).is_bottom
