"""The array-region / loop-bound analysis: switch cascade, region
algebra, exact path counting, loop bounds (including the inner-loop
decrease refinement), axiom-derived value ranges, out-of-region
refutation, guided axiom instantiation, and the stale-profile-budget
lint."""

import pytest

from repro.analysis.domains import Congruence, Interval
from repro.analysis.regions import (
    ENV_FLAG,
    PATH_COUNT_CAP,
    STALE_PROFILE_BUDGET,
    Region,
    analyze_task,
    inferred_path_budget,
    lint_profile_budget,
    path_count,
    refute_out_of_region,
    regions_enabled,
)
from repro.lang.parser import parse_expr
from repro.lang.transform import compose, desugar_program
from repro.pins.template import HoleSpace
from repro.suite import BENCHMARK_MODULES, get_benchmark, resolved_budget
from repro.suite.common import array_range_axiom
from repro.symexec.executor import enumerate_paths


def task_of(name):
    return get_benchmark(name).task


def composed_body(name):
    task = task_of(name)
    return desugar_program(compose(task.program, task.inverse)).body


# -- the switch ---------------------------------------------------------------


def test_regions_enabled_cascade(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert regions_enabled(None, fwdbwd=True) is True
    assert regions_enabled(None, fwdbwd=False) is False
    assert regions_enabled(False, fwdbwd=True) is False
    assert regions_enabled(True, fwdbwd=False) is True
    monkeypatch.setenv(ENV_FLAG, "0")
    assert regions_enabled(None, fwdbwd=True) is False
    monkeypatch.setenv(ENV_FLAG, "on")
    assert regions_enabled(None, fwdbwd=False) is True
    # Explicit override still wins over the env var.
    assert regions_enabled(False, fwdbwd=True) is False


# -- region algebra -----------------------------------------------------------


def test_region_membership_and_join():
    a = Region(Interval.make(0, 3), Congruence.TOP)
    b = Region(Interval.make(10, 12), Congruence.TOP)
    assert a.contains(0) and a.contains(3) and not a.contains(4)
    joined = a.join(b)
    assert joined.contains(7)  # interval join over-approximates
    assert Region.BOT.join(a) == a
    assert a.join(Region.BOT) == a
    assert Region.BOT.is_bottom
    assert not Region.BOT.contains(0)


def test_region_members_finite_and_capped():
    small = Region(Interval.make(2, 5), Congruence.TOP)
    assert small.members() == (2, 3, 4, 5)
    assert Region(Interval.make(0, None), Congruence.TOP).members() is None
    assert Region.BOT.members() is None
    wide = Region(Interval.make(0, 10_000), Congruence.TOP)
    assert wide.members() is None  # wider than the guided cap


# -- exact path counting ------------------------------------------------------


@pytest.mark.parametrize("name,unroll", [("sumi", 2), ("runlength", 1)])
def test_path_count_matches_enumeration(name, unroll):
    body = composed_body(name)
    enumerated = sum(1 for _ in enumerate_paths(body, max_unroll=unroll,
                                                limit=100_000))
    assert path_count(body, unroll) == enumerated


def test_path_count_scales_past_enumeration_budgets():
    # permute_count at its task unroll has > 10^6 syntactic paths; the
    # memoized walker must count them exactly without enumerating.
    task = task_of("permute_count")
    body = composed_body("permute_count")
    count = path_count(body, task.max_unroll)
    assert count is not None and count > PATH_COUNT_CAP


# -- loop bounds --------------------------------------------------------------


def test_forward_loop_bounded_on_sumi():
    report = analyze_task(task_of("sumi"), name="sumi")
    bounded = [lb for lb in report.loops if lb.bounded]
    assert len(bounded) == 1
    assert str(bounded[0].rank) == "((n - i) - 1)"
    assert bounded[0].decrease == 1
    # The inverse loop's guard is a predicate hole: never bounded.
    unbounded = [lb for lb in report.loops if not lb.bounded]
    assert unbounded and all("[p" in lb.guard for lb in unbounded)


def test_outer_loop_bounded_despite_inner_loop_on_runlength():
    # runlength's inner run-scanning loop also advances i; the decrease
    # check must accept it (inner paths only drive the rank down).
    report = analyze_task(task_of("runlength"), name="runlength")
    assert report.bounded_loops() == 1


# -- value ranges and footprints ----------------------------------------------


def test_value_ranges_recovered_from_axioms():
    assert analyze_task(task_of("lzw")).value_ranges == {"A": (0, 2)}
    assert analyze_task(task_of("uuencode")).value_ranges == {"A": (0, 256)}
    assert analyze_task(task_of("pkt_wrapper")).value_ranges == {"F": (0, 9)}
    assert analyze_task(task_of("sumi")).value_ranges == {}


def test_default_cell_prefers_range_low_end():
    report = analyze_task(task_of("lzw"))
    assert report.default_cell("A") == 0  # 0 is inside [0, 2)
    report.value_ranges["X"] = (5, 10)
    assert report.default_cell("X") == 5  # 0 outside the range: snap to lo
    assert report.default_cell("unknown") == 0


def test_footprints_recorded():
    report = analyze_task(task_of("vector_reverse"))
    assert not report.arrays["A"].reads.is_bottom
    assert report.arrays["A"].writes.is_bottom
    assert not report.arrays["R"].writes.is_bottom


def test_suite_guided_indices_are_empty():
    # Every suite array is indexed through [0, n) with symbolic n, so no
    # finite region exists and guided instantiation adds nothing — which
    # is what keeps the recorded digests bit-identical regions-on/off.
    for name in BENCHMARK_MODULES:
        assert analyze_task(task_of(name)).guided_indices() == {}, name


# -- out-of-region refutation -------------------------------------------------


def test_refutes_constant_negative_index():
    report = analyze_task(task_of("vector_reverse"))
    space = HoleSpace(
        expr_holes=(("e1", (parse_expr("sel(A, 0 - 1)"),
                            parse_expr("sel(A, 0)"),
                            parse_expr("sel(A, i)"),
                            parse_expr("i + 1"))),),
        pred_holes=())
    refuted = refute_out_of_region(space, report)
    assert refuted == [("e1", 0)]


# -- inferred path budgets ----------------------------------------------------


def test_inferred_budget_is_the_syntactic_ceiling():
    body = composed_body("sumi")
    assert inferred_path_budget("sumi") == path_count(body,
                                                     task_of("sumi").max_unroll)


def test_resolved_budget_appends_only_when_absent():
    assert resolved_budget("sumi").endswith(
        f";paths={inferred_path_budget('sumi')}")
    # Hand paths= values win.
    assert resolved_budget("base64") == "smt=120;paths=4;wall=600"
    # Regions off: the untouched profile spec.
    assert resolved_budget("sumi", regions=False) == "smt=1500;wall=300"
    # permute_count's ceiling exceeds PATH_COUNT_CAP, so stripping its
    # hand paths= would leave the spec unaugmented rather than capped.
    assert inferred_path_budget("permute_count") > PATH_COUNT_CAP
    # Unregistered programs have no profile budget to augment.
    assert resolved_budget("no_such_program") is None


def test_lint_flags_dead_path_budget():
    diags = lint_profile_budget("sumi", "smt=100;paths=99999")
    assert len(diags) == 1
    assert diags[0].code == STALE_PROFILE_BUDGET
    assert lint_profile_budget("sumi", "smt=100;paths=4") == []
    assert lint_profile_budget("sumi", "smt=100") == []
    assert lint_profile_budget("sumi", None) == []


def test_suite_profiles_pass_the_lint():
    from repro.suite import bench_profile

    for name in BENCHMARK_MODULES:
        assert lint_profile_budget(name, bench_profile(name).budget) == [], name


# -- guided axiom instantiation ----------------------------------------------


def test_guided_instances_cover_region_indices():
    from repro.smt.quant import guided_instances

    axiom = array_range_axiom("A", "n", 0, 2)
    instances = guided_instances([axiom], {"A": (0, 1, 2)})
    assert len(instances) == 3
    assert guided_instances([axiom], {"B": (0, 1)}) == []
    assert guided_instances([axiom], {}) == []


def test_guided_instances_flip_a_trigger_starved_query():
    from repro.smt import ARR, INT, SAT, UNSAT, Solver, mk_eq, mk_int, \
        mk_select, mk_var

    axiom = array_range_axiom("A", "n", 0, 2)
    query = [mk_eq(mk_var("n#0", INT), mk_int(5)),
             mk_eq(mk_select(mk_var("A#0", ARR), mk_int(1)), mk_int(5))]
    # With instantiation starved (rounds=0) the axiom never constrains
    # A[1] and the solver happily assigns it 5.
    starved = Solver(axioms=[axiom], instantiation_rounds=0)
    starved.add(*query)
    assert starved.check() == SAT
    # The guided instance at index 1 closes the gap.
    guided = Solver(axioms=[axiom], instantiation_rounds=0,
                    guided_indices={"A": (1,)})
    guided.add(*query)
    assert guided.check() == UNSAT


def test_guided_instances_are_noops_when_triggers_already_fired():
    from repro.smt import ARR, INT, Solver, mk_eq, mk_int, mk_select, mk_var

    axiom = array_range_axiom("A", "n", 0, 2)
    query = [mk_eq(mk_var("n#0", INT), mk_int(5)),
             mk_eq(mk_select(mk_var("A#0", ARR), mk_int(1)), mk_int(5))]
    plain = Solver(axioms=[axiom])
    plain.add(*query)
    guided = Solver(axioms=[axiom], guided_indices={"A": (1,)})
    guided.add(*query)
    # The trigger already instantiated at index 1; the guided instance
    # is a hash-consed duplicate and must be dropped, keeping the
    # preprocessed formula list byte-identical.
    assert [t.id for t in plain._preprocess()] == \
        [t.id for t in guided._preprocess()]
