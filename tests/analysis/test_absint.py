"""Tests for the abstract interpreter: transfer, fixpoints, backward
analysis, saturation, certification, and the non-termination lint rule.

The Galois-soundness test generates seeded random straight-line programs,
runs them concretely, and asserts every concrete final value lands in
γ(abstract final value) — the whole-program soundness contract.
"""

import random

import pytest

from repro.analysis.absint import (
    AbsEnv,
    BackwardAnalyzer,
    ForwardAnalyzer,
    absint_enabled,
    eval_pred,
    forward_backward_prove,
    preds_unsat,
    refine_pred,
    saturate,
)
from repro.analysis.domains import AbsVal
from repro.concrete.interp import InterpError, Interpreter
from repro.lang import ast
from repro.lang.ast import ArithOp, GWhile, Program, Sort

INT = Sort.INT


def env_of(sorts, **vals):
    env = AbsEnv(sorts)
    for name, v in vals.items():
        env = env.set(name, AbsVal.const(v) if isinstance(v, int) else v)
    return env


# -- saturation over ground predicate lists ---------------------------------


def test_saturate_refines_through_defining_equalities():
    sorts = {"x": INT, "y": INT}
    preds = [
        ast.eq(ast.Var("y#1"), ast.add(ast.Var("x#0"), ast.n(2))),
        ast.le(ast.Var("y#1"), ast.n(5)),
        ast.ge(ast.Var("x#0"), ast.n(0)),
    ]
    env = saturate(preds, sorts)
    assert env is not None
    x = env.get("x#0")
    assert x.interval.lo == 0 and x.interval.hi == 3  # backward through +2


def test_preds_unsat_on_bounded_contradiction():
    sorts = {"x": INT}
    preds = [
        ast.ge(ast.Var("x#0"), ast.n(5)),
        ast.le(ast.Var("x#0"), ast.n(3)),
    ]
    assert preds_unsat(preds, sorts)


def test_preds_sat_stays_open():
    sorts = {"x": INT}
    preds = [ast.ge(ast.Var("x#0"), ast.n(0)),
             ast.le(ast.Var("x#0"), ast.n(3))]
    assert not preds_unsat(preds, sorts)


def test_refine_pred_conjunction_and_negation():
    sorts = {"x": INT}
    env = AbsEnv(sorts)
    p = ast.conj([ast.ge(ast.Var("x"), ast.n(1)),
                  ast.lt(ast.Var("x"), ast.n(4))])
    refined = refine_pred(p, env)
    assert refined.get("x").interval.lo == 1
    assert refined.get("x").interval.hi == 3
    # not (x >= 1)  ==>  x <= 0
    neg = refine_pred(ast.ge(ast.Var("x"), ast.n(1)), env, result=False)
    assert neg.get("x").interval.hi == 0
    assert eval_pred(ast.lt(ast.Var("x"), ast.n(1)), neg) is True


# -- forward fixpoints ------------------------------------------------------


def loop_to_ten():
    body = ast.seq(
        ast.assign("i", ast.n(0)),
        GWhile(ast.lt(ast.Var("i"), ast.n(10)),
               ast.assign("i", ast.add(ast.Var("i"), ast.n(1))), "L"),
    )
    return Program("ten", {"i": INT}, body)


def test_forward_loop_fixpoint_with_narrowing():
    p = loop_to_ten()
    result = ForwardAnalyzer(p.decls).run(p.body)
    i = result.final.get("i")
    assert i.contains(10)          # soundness
    assert i.interval.lo == 10     # exit refinement: i >= 10
    assert i.interval.hi == 10     # narrowing recovers the 10 bound


def test_decided_guard_unrolling_is_exact():
    p = loop_to_ten()
    fwd = ForwardAnalyzer(p.decls, unroll_fuel=64)
    result = fwd.run(p.body)
    assert result.final.get("i").as_const() == 10


def test_loop_divergence_detected():
    body = ast.seq(
        ast.assign("i", ast.n(0)),
        GWhile(ast.ge(ast.Var("i"), ast.n(0)),
               ast.assign("i", ast.add(ast.Var("i"), ast.n(1))), "L"),
    )
    fwd = ForwardAnalyzer({"i": INT})
    result = fwd.run(body)
    assert result.final.bottom        # the exit state is unreachable
    assert len(result.loops) == 1
    assert result.loops[0].certainly_diverges


def test_terminating_loop_not_flagged():
    p = loop_to_ten()
    result = ForwardAnalyzer(p.decls).run(p.body)
    assert not result.loops[0].certainly_diverges


# -- backward analysis ------------------------------------------------------


def test_backward_assign_inverts_addition():
    sorts = {"x": INT, "y": INT}
    stmt = ast.assign("x", ast.add(ast.Var("y"), ast.n(1)))
    post = env_of(sorts, x=5)
    pre = BackwardAnalyzer(sorts).run(stmt, post)
    assert pre.get("y").as_const() == 4


def test_backward_assume_contradiction_is_none():
    sorts = {"x": INT}
    stmt = ast.Assume(ast.ge(ast.Var("x"), ast.n(10)))
    post = env_of(sorts, x=AbsVal.range(0, 5))
    assert BackwardAnalyzer(sorts).run(stmt, post) is None


def test_forward_backward_prove_simple_identity():
    sorts = {"i": INT, "n": INT}
    stmt = ast.assign("i", ast.Var("n"))
    entry = env_of(sorts, n=3)
    violation = ast.ne(ast.Var("i"), ast.Var("n"))
    assert forward_backward_prove(stmt, sorts, entry, violation)
    # Unbounded entry: non-relational domains cannot prove it.
    assert not forward_backward_prove(stmt, sorts, AbsEnv(sorts), violation)


# -- Galois soundness vs the concrete interpreter ---------------------------


def random_straightline(rng: random.Random, n_stmts: int = 8):
    names = ["a", "b", "c"]
    stmts = []
    for _ in range(n_stmts):
        target = rng.choice(names)
        op = rng.choice([ArithOp.ADD, ArithOp.SUB, ArithOp.MUL,
                         ArithOp.DIV, ArithOp.MOD])

        def operand():
            if rng.random() < 0.5:
                return ast.Var(rng.choice(names))
            return ast.n(rng.randint(-6, 6))

        right = operand()
        if op in (ArithOp.DIV, ArithOp.MOD) and rng.random() < 0.7:
            right = ast.n(rng.choice([1, 2, 3, -2]))  # mostly safe divisors
        stmts.append(ast.assign(target, ast.BinOp(op, operand(), right)))
    decls = {n: INT for n in names}
    body = ast.seq(ast.In(tuple(names)), *stmts)
    return Program("rand", decls, body)


@pytest.mark.parametrize("seed", range(12))
def test_galois_soundness_random_straightline(seed):
    rng = random.Random(seed)
    for _ in range(20):
        prog = random_straightline(rng)
        inputs = {n: rng.randint(-5, 5) for n in ("a", "b", "c")}
        try:
            final = Interpreter().run(prog, inputs)
        except InterpError:
            continue  # division by zero: no final state to check
        entry = env_of(prog.decls, **inputs)
        result = ForwardAnalyzer(prog.decls).run(prog.body, entry)
        assert not result.final.bottom
        for name in ("a", "b", "c"):
            assert result.final.get(name).contains(final[name]), (
                f"seed={seed} {name}={final[name]} escaped "
                f"{result.final.get(name)}")


# -- switches ---------------------------------------------------------------


def test_absint_enabled_env_and_override(monkeypatch):
    monkeypatch.delenv("REPRO_ABSINT", raising=False)
    monkeypatch.delenv("REPRO_STATIC_PRUNING", raising=False)
    assert absint_enabled(None) is True      # default: follows pruning default
    assert absint_enabled(False) is False
    monkeypatch.setenv("REPRO_ABSINT", "0")
    assert absint_enabled(None) is False
    assert absint_enabled(True) is True      # explicit override beats env
    monkeypatch.delenv("REPRO_ABSINT")
    monkeypatch.setenv("REPRO_STATIC_PRUNING", "0")
    assert absint_enabled(None) is False     # cascades from static pruning


# -- certification + lint rule ----------------------------------------------


@pytest.mark.absint
def test_certify_sumi_scalars_proved():
    from repro.analysis.certify import certify_benchmark

    report = certify_benchmark("sumi")
    assert report.scalars_proved
    scalar = [v for v in report.verdicts if v.in_var == "n"]
    assert scalar and scalar[0].verdict == "PROVED"
    assert scalar[0].boxes_proved == scalar[0].boxes_total > 0


def test_nonterminating_loop_lint_rule():
    from repro.analysis.lint import NONTERMINATING_LOOP, lint_program

    body = ast.seq(
        ast.assign("i", ast.n(0)),
        GWhile(ast.ge(ast.Var("i"), ast.n(0)),
               ast.assign("i", ast.add(ast.Var("i"), ast.n(1))), "L"),
    )
    diags = lint_program(Program("div", {"i": INT}, body))
    assert any(d.code == NONTERMINATING_LOOP for d in diags)
    clean = lint_program(loop_to_ten())
    assert not any(d.code == NONTERMINATING_LOOP for d in clean)


# -- refine_expr / refine_pred edge cases ------------------------------------


def test_refine_expr_exact_division_on_multiplication():
    from repro.analysis.absint import refine_expr

    sorts = {"x": INT}
    env = AbsEnv(sorts)
    e = ast.mul(ast.Var("x"), ast.n(3))
    # x * 3 = 6 pins x to 2.
    refined = refine_expr(e, env, AbsVal.const(6))
    assert refined is not None
    assert refined.get("x").as_const() == 2
    # x * 3 = 7 has no integer solution: ceil(7/3) > floor(7/3) -> bottom.
    assert refine_expr(e, env, AbsVal.const(7)) is None


def test_refine_expr_floor_division_backward_range():
    from repro.analysis.absint import refine_expr
    from repro.lang.ast import ArithOp, BinOp

    sorts = {"x": INT}
    env = AbsEnv(sorts)
    e = BinOp(ArithOp.DIV, ast.Var("x"), ast.n(4))
    refined = refine_expr(e, env, AbsVal.const(2))
    assert refined is not None
    x = refined.get("x").interval
    assert (x.lo, x.hi) == (8, 11)  # exactly the preimage of // 4 at 2


def test_refine_pred_congruence_under_negation():
    from repro.analysis.absint import refine_pred
    from repro.analysis.domains import Congruence, Interval

    sorts = {"x": INT}
    even = AbsVal.make(Interval.make(0, 20), Congruence.make(2, 0))
    env = AbsEnv(sorts).set("x", even)
    # not (x != 8): double negation lands on the equality path, and the
    # congruence admits 8.
    refined = refine_pred(ast.ne(ast.Var("x"), ast.n(8)), env, result=False)
    assert refined is not None
    assert refined.get("x").as_const() == 8
    # not (x != 7): 7 is odd, the congruence refutes it outright.
    assert refine_pred(ast.ne(ast.Var("x"), ast.n(7)), env,
                       result=False) is None


def test_refine_pred_meet_to_bottom_detects_contradiction():
    from repro.analysis.absint import refine_pred

    sorts = {"x": INT}
    env = AbsEnv(sorts)
    p = ast.conj([ast.ge(ast.Var("x"), ast.n(5)),
                  ast.le(ast.Var("x"), ast.n(3))])
    assert refine_pred(p, env) is None
    # The same conjunction under negation is a satisfiable disjunction.
    assert refine_pred(p, env, result=False) is not None
