"""The ISSUE's acceptance regression: full PINS runs under chaos.

A run with a crashed pool worker AND a corrupted cache shard must be
bit-identical to a plain run — every degradation path (serial fallback,
shard quarantine + recompute) is result-preserving by contract
(DESIGN.md §10, §12).  This is the test CI leans on; keep it green.
"""

import glob
import hashlib
import os

import pytest

from repro.pins import PinsConfig, run_pins
from repro.resil.faults import uninstall_plan
from repro.suite import get_benchmark

CONFIGS = {
    "sumi": dict(m=10, max_iterations=25, seed=1),
    "runlength": dict(m=6, max_iterations=6, seed=1),
}


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    uninstall_plan()
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_QUERY_CACHE", raising=False)
    yield
    uninstall_plan()


def fingerprint(result):
    solutions = tuple(sorted(s.describe() for s in result.solutions))
    digest = hashlib.sha256("\n".join(solutions).encode()).hexdigest()
    return (result.status, result.stats.iterations,
            result.stats.paths_explored, len(result.solutions), digest)


def run(name, **overrides):
    config = dict(CONFIGS[name], absint=False)
    config.update(overrides)
    return run_pins(get_benchmark(name).task, PinsConfig(**config))


@pytest.mark.parametrize("name", ["sumi", "runlength"])
def test_chaos_run_is_bit_identical(name, tmp_path, monkeypatch):
    plain = run(name)
    cache_dir = str(tmp_path) + os.sep
    primed = run(name, query_cache=cache_dir)  # populate the disk tier
    assert fingerprint(primed) == fingerprint(plain)
    assert glob.glob(os.path.join(str(tmp_path), "*.jsonl*"))

    monkeypatch.setenv("REPRO_JOBS_FORCE", "1")
    chaos = run(name, jobs=2, query_cache=cache_dir,
                faults="pool.worker_crash@0;cache.corrupt_shard@0")
    assert fingerprint(chaos) == fingerprint(plain)
    assert chaos.metrics.counter("resil.fault.pool.worker_crash") == 1
    assert chaos.metrics.counter("resil.fault.cache.corrupt_shard") == 1
    assert chaos.metrics.counter("resil.pool.degraded") >= 1
    assert chaos.metrics.counter("resil.cache.quarantined") >= 1
    assert glob.glob(os.path.join(str(tmp_path), "*.bad"))
