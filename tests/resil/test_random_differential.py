"""Randomized differential tests over the Fig. 2 language layer.

Seeded random hole-free programs (assignments, guarded conditionals, one
bounded counting loop) are pushed through two independent differentials:

* ``parse ∘ pretty`` must be the identity on program ASTs — the pretty
  printer and the parser are inverse by construction, and this sweeps
  the construct combinations no hand-written test enumerates;
* the concrete interpreter vs. symbolic path replay: for every input,
  exactly one enumerated symbolic path is feasible, and replaying it
  (:func:`repro.concrete.interp.run_path`) must produce the same final
  store as :class:`repro.concrete.interp.Interpreter`.

Mirrors the random-CNF-vs-brute-force pattern from the SAT layer: plain
``random.Random`` with fixed seeds, no hypothesis dependency, failures
reproduce exactly.
"""

import random

from repro.concrete.interp import Interpreter, run_path
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.transform import desugar_program
from repro.symexec.executor import enumerate_paths

VARS = ("a", "b", "x")
COUNTER = "k"  # reserved for the loop; body statements never write it
MAX_LOOP = 3


def rand_expr(rng: random.Random, depth: int = 2) -> ast.Expr:
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        return ast.v(rng.choice(VARS))
    if roll < 0.6:
        return ast.n(rng.randint(-3, 3))
    op = rng.choice((ast.ArithOp.ADD, ast.ArithOp.SUB, ast.ArithOp.MUL))
    return ast.BinOp(op, rand_expr(rng, depth - 1), rand_expr(rng, depth - 1))


def rand_pred(rng: random.Random) -> ast.Pred:
    def cmp():
        op = rng.choice((ast.CmpOp.LT, ast.CmpOp.LE, ast.CmpOp.EQ,
                         ast.CmpOp.GT, ast.CmpOp.NE))
        return ast.Cmp(op, rand_expr(rng, 1), rand_expr(rng, 1))

    roll = rng.random()
    if roll < 0.6:
        return cmp()
    if roll < 0.75:
        return ast.Not(cmp())
    if roll < 0.9:
        return ast.And((cmp(), cmp()))
    return ast.Or((cmp(), cmp()))


def rand_stmt(rng: random.Random, branch_budget: int) -> ast.Stmt:
    if branch_budget > 0 and rng.random() < 0.3:
        return ast.GIf(rand_pred(rng),
                       ast.seq(*(rand_stmt(rng, 0)
                                 for _ in range(rng.randint(1, 2)))),
                       ast.seq(*(rand_stmt(rng, 0)
                                 for _ in range(rng.randint(1, 2)))))
    return ast.assign(rng.choice(VARS), rand_expr(rng))


def random_program(seed: int) -> ast.Program:
    """A random hole-free program with at most one bounded loop."""
    rng = random.Random(seed)
    stmts = [rand_stmt(rng, branch_budget=1) for _ in range(rng.randint(1, 3))]
    if rng.random() < 0.7:
        body = [rand_stmt(rng, branch_budget=1)
                for _ in range(rng.randint(1, 2))]
        body.append(ast.assign(COUNTER,
                               ast.BinOp(ast.ArithOp.SUB, ast.v(COUNTER),
                                         ast.n(1))))
        stmts.append(ast.assign(COUNTER, ast.n(rng.randint(0, MAX_LOOP))))
        stmts.append(ast.GWhile(ast.Cmp(ast.CmpOp.GT, ast.v(COUNTER),
                                        ast.n(0)),
                                ast.seq(*body)))
        stmts.append(rand_stmt(rng, branch_budget=0))
    decls = {name: ast.Sort.INT for name in VARS + (COUNTER,)}
    return ast.Program(f"rnd{seed}", decls, ast.seq(*stmts))


def test_parse_pretty_round_trip():
    for seed in range(60):
        program = random_program(seed)
        text = pretty_program(program)
        assert parse_program(text) == program, (seed, text)


def test_pretty_is_stable_under_round_trip():
    # pretty ∘ parse ∘ pretty == pretty: the printed form is canonical.
    for seed in range(20):
        text = pretty_program(random_program(seed))
        assert pretty_program(parse_program(text)) == text, seed


def random_inputs(rng: random.Random):
    return {name: rng.randint(-4, 4) for name in VARS + (COUNTER,)}


def test_interpreter_vs_symbolic_path_replay():
    for seed in range(40):
        program = random_program(seed)
        desugared = desugar_program(program)
        initial_vmap = {name: 0 for name in program.decls}
        paths = list(enumerate_paths(desugared.body, max_unroll=MAX_LOOP,
                                     initial_vmap=initial_vmap))
        assert paths, seed
        rng = random.Random(10_000 + seed)
        for _ in range(5):
            inputs = random_inputs(rng)
            expected = Interpreter().run(program, dict(inputs))
            feasible = []
            for path in paths:
                env = run_path(path.items, inputs, program.decls)
                if env is not None:
                    feasible.append((path, env))
            # The program is deterministic and loop-bounded, so exactly
            # one symbolic path accepts each input.
            assert len(feasible) == 1, (seed, inputs, len(feasible))
            path, env = feasible[0]
            for name in program.decls:
                version = path.final_version(name)
                assert env[f"{name}#{version}"] == expected[name], \
                    (seed, inputs, name)
