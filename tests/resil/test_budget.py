"""Budget propagation tests, layer by layer (repro.resil.budget).

Each expensive layer charges a shared :class:`Budget` at a cheap
boundary and degrades cooperatively on exhaustion: the SAT core raises
(with its trail cancelled to root), the SMT solver answers ``unknown``,
the symbolic executor raises out of ``find_path``, and the PINS loop
converts all of it into a ``budget_exhausted`` result carrying the best
solution set seen so far — never a traceback.
"""

import hashlib

import pytest

from repro.pins import PinsConfig, run_pins
from repro.resil import Budget, BudgetExhausted, parse_budget_spec, resolve_budget
from repro.resil.budget import ENV_BUDGET
from repro.smt import INT, SAT, UNKNOWN, Solver, mk_lt, mk_var
from repro.smt.sat import SatSolver
from repro.suite import get_benchmark


def fingerprint(result):
    solutions = tuple(sorted(s.describe() for s in result.solutions))
    digest = hashlib.sha256("\n".join(solutions).encode()).hexdigest()
    return (result.status, result.stats.iterations,
            result.stats.paths_explored, len(result.solutions), digest)


def run(name, *, budget=None, **overrides):
    config = dict(m=10, max_iterations=25, seed=1)
    if name == "runlength":
        config = dict(m=6, max_iterations=6, seed=1)
    config.update(overrides)
    task = get_benchmark(name).task
    return run_pins(task, PinsConfig(budget=budget, **config))


# -- spec parsing and resolution ----------------------------------------------


def test_parse_budget_spec_fields_and_aliases():
    b = parse_budget_spec("wall=2.5;smt=500;sat=100000;paths=50")
    assert (b.wall_s, b.smt_queries, b.sat_conflicts, b.symexec_paths) == \
        (2.5, 500, 100000, 50)
    b2 = parse_budget_spec("time=1; queries=2; conflicts=3; symexec_paths=4")
    assert (b2.wall_s, b2.smt_queries, b2.sat_conflicts, b2.symexec_paths) == \
        (1.0, 2, 3, 4)


@pytest.mark.parametrize("bad", [
    "", "wall", "wall=abc", "frobs=3", "smt=1;smt=2", "smt=-1", "paths=1.5",
])
def test_parse_budget_spec_rejects(bad):
    with pytest.raises(ValueError):
        parse_budget_spec(bad)


def test_resolve_budget_precedence(monkeypatch):
    monkeypatch.delenv(ENV_BUDGET, raising=False)
    assert resolve_budget(None) is None
    assert resolve_budget("") is None
    monkeypatch.setenv(ENV_BUDGET, "smt=7")
    assert resolve_budget(None).smt_queries == 7
    assert resolve_budget("smt=9").smt_queries == 9  # config wins
    ready = Budget(smt_queries=3)
    assert resolve_budget(ready) is ready
    monkeypatch.setenv(ENV_BUDGET, "0")
    assert resolve_budget(None) is None


def test_budget_charges_and_poisons():
    b = Budget(smt_queries=1).start()
    b.charge_smt_query()  # 1 of 1: fine
    with pytest.raises(BudgetExhausted) as exc:
        b.charge_smt_query()
    assert exc.value.reason == "smt_queries"
    assert b.exhausted and b.reason == "smt_queries"
    # Exhaustion poisons every later charge, whatever the dimension.
    with pytest.raises(BudgetExhausted):
        b.charge_symexec_path()
    assert not b.ok()


def test_wall_deadline_trips_check():
    b = Budget(wall_s=0.0).start()
    with pytest.raises(BudgetExhausted) as exc:
        b.check()
    assert exc.value.reason == "wall"


# -- SAT core -----------------------------------------------------------------

PHP_3_2 = [[1, 2], [3, 4], [5, 6],
           [-1, -3], [-1, -5], [-3, -5],
           [-2, -4], [-2, -6], [-4, -6]]  # pigeonhole: UNSAT, needs conflicts


def test_sat_solver_raises_on_conflict_budget():
    solver = SatSolver()
    for clause in PHP_3_2:
        assert solver.add_clause(clause)
    solver.budget = Budget(sat_conflicts=0).start()
    with pytest.raises(BudgetExhausted) as exc:
        solver.solve()
    assert exc.value.reason == "sat_conflicts"
    # The raise cancelled the trail to root: detaching the budget, the
    # same instance still answers correctly.
    solver.budget = None
    assert solver.solve() is False


# -- SMT solver ---------------------------------------------------------------


def test_solver_degrades_to_unknown_on_budget():
    x, y = mk_var("x", INT), mk_var("y", INT)
    budget = Budget(smt_queries=1).start()
    first = Solver(budget=budget)
    first.add(mk_lt(x, y))
    assert first.check() == SAT  # query 1 of 1 is within budget
    second = Solver(budget=budget)
    second.add(mk_lt(x, y))
    assert second.check() == UNKNOWN  # never an exception
    assert "budget exhausted" in second.unknown_reason
    assert budget.reason == "smt_queries"


def test_sat_exhaustion_inside_solver_degrades_to_unknown():
    # The per-conflict charge fires inside the CDCL core; Solver.check
    # must still answer unknown, not leak BudgetExhausted.  The formula
    # is a pigeonhole instance over integer equalities: its boolean
    # skeleton is UNSAT but has no unit clauses, so CDCL must search
    # (and conflict) rather than settle at the root by propagation.
    from repro.smt import mk_and, mk_eq, mk_int, mk_not, mk_or

    holes = [mk_var(f"h{p}", INT) for p in range(3)]
    parts = [mk_or(mk_eq(h, mk_int(1)), mk_eq(h, mk_int(2))) for h in holes]
    for i in range(3):
        for j in range(i + 1, 3):
            for slot in (1, 2):
                parts.append(mk_not(mk_and(mk_eq(holes[i], mk_int(slot)),
                                           mk_eq(holes[j], mk_int(slot)))))
    unbudgeted = Solver()
    unbudgeted.add(*parts)
    assert unbudgeted.check() == "unsat"
    budget = Budget(sat_conflicts=0).start()
    s = Solver(budget=budget)
    s.add(*parts)
    assert s.check() == UNKNOWN
    assert budget.reason in ("sat_conflicts", "wall")


# -- symbolic executor --------------------------------------------------------


def test_executor_charges_per_returned_path():
    import random

    from repro.lang.parser import parse_program
    from repro.lang.transform import desugar_program
    from repro.symexec.executor import ExecConfig, SymbolicExecutor

    loopy = desugar_program(parse_program("""
    program t [int n; int i] {
      in(n);
      i := 0;
      while (i < n) {
        i := i + 1;
      }
      out(i);
    }
    """))
    budget = Budget(symexec_paths=1).start()
    ex = SymbolicExecutor(loopy, config=ExecConfig(budget=budget))
    rng = random.Random(0)
    seen = set()
    path = ex.find_path({}, {}, seen, rng)
    assert path is not None  # path 1 of 1 is within budget
    seen.add(path)
    with pytest.raises(BudgetExhausted) as exc:
        ex.find_path({}, {}, seen, rng)
    assert exc.value.reason == "symexec_paths"


# -- the full PINS loop -------------------------------------------------------


def test_run_pins_exhaustion_returns_best_so_far_not_traceback():
    # absint off forces real SMT traffic, so a zero-query budget trips
    # early; whatever the loop had by then must come back as a result
    # object with status budget_exhausted — never an exception.
    result = run("runlength", budget=Budget(smt_queries=0), absint=False)
    assert result.status == "budget_exhausted"
    assert result.stats.budget_exhausted == "smt_queries"
    assert result.metrics.counter("resil.budget_exhausted") >= 1
    assert result.metrics.counter("resil.budget_exhausted.smt_queries") >= 1


def test_run_pins_wall_deadline_zero():
    result = run("runlength", budget=Budget(wall_s=0.0))
    assert result.status == "budget_exhausted"
    assert result.stats.budget_exhausted == "wall"
    assert result.solutions == []


def test_run_pins_path_budget_keeps_nonempty_best_so_far():
    # Dynamic sizing: let the unbudgeted run tell us how many paths it
    # needs, then grant one fewer.  The run is bit-identical up to the
    # moment the last path is charged, so the best-so-far set is exactly
    # the previous iteration's solve() result — non-empty by definition
    # (an empty solve ends the loop as no_solution before any path).
    free = run("runlength")
    paths = free.stats.paths_explored
    assert paths >= 1
    capped = run("runlength", budget=Budget(symexec_paths=paths - 1))
    assert capped.status == "budget_exhausted"
    assert capped.stats.budget_exhausted == "symexec_paths"
    assert capped.stats.paths_explored == paths - 1
    assert len(capped.solutions) >= 1


@pytest.mark.parametrize("name", ["sumi", "runlength"])
def test_generous_budget_is_bit_identical_to_unbudgeted(name):
    free = run(name)
    roomy = run(name, budget=Budget(wall_s=3600.0, smt_queries=10**9,
                                    sat_conflicts=10**9, symexec_paths=10**9))
    assert fingerprint(roomy) == fingerprint(free)
    assert roomy.stats.budget_exhausted == ""


def test_budget_spec_accepted_via_config_string(monkeypatch):
    monkeypatch.delenv(ENV_BUDGET, raising=False)
    result = run("runlength", budget="wall=0")
    assert result.status == "budget_exhausted"
