"""Fault-injection tests (repro.resil.faults) and degradation cascades.

Every fault here is *result-preserving* by design: a crashed or wedged
pool worker degrades the batch to serial re-execution with an
index-ordered merge, a corrupted cache shard is quarantined and its
entries recomputed, and a candidate that keeps timing out is demoted
rather than wedging solve().  The assertions therefore compare full run
fingerprints against a fault-free baseline.
"""

import glob
import hashlib
import os

import pytest

from repro.pins import PinsConfig, run_pins
from repro.resil import faults
from repro.resil.faults import (
    ENV_FAULTS,
    FaultPlan,
    install_plan,
    parse_fault_spec,
    resolve_fault_plan,
    should_fail,
    uninstall_plan,
)
from repro.smt import INT, SAT, UNKNOWN, Solver, mk_lt, mk_var
from repro.suite import get_benchmark


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no fault plan installed."""
    uninstall_plan()
    yield
    uninstall_plan()


def fingerprint(result):
    solutions = tuple(sorted(s.describe() for s in result.solutions))
    digest = hashlib.sha256("\n".join(solutions).encode()).hexdigest()
    return (result.status, result.stats.iterations,
            result.stats.paths_explored, len(result.solutions), digest)


def run(name, *, jobs=None, query_cache=None, force_fork=False,
        monkeypatch=None, **overrides):
    if force_fork:
        monkeypatch.setenv("REPRO_JOBS_FORCE", "1")
    elif monkeypatch is not None:
        monkeypatch.delenv("REPRO_JOBS_FORCE", raising=False)
    config = dict(m=10, max_iterations=25, seed=1)
    if name == "runlength":
        config = dict(m=6, max_iterations=6, seed=1)
    config.update(overrides)
    task = get_benchmark(name).task
    return run_pins(task, PinsConfig(jobs=jobs, query_cache=query_cache,
                                     **config))


# -- plan parsing and hit counting --------------------------------------------


def test_parse_fault_spec_and_hit_indices():
    plan = parse_fault_spec("smt.timeout@1,3;pool.worker_crash@0;x@*")
    install_plan(plan)
    assert [should_fail("smt.timeout") for _ in range(5)] == \
        [False, True, False, True, False]
    assert [should_fail("pool.worker_crash") for _ in range(3)] == \
        [True, False, False]
    assert all(should_fail("x") for _ in range(4))
    assert not should_fail("unknown.site")
    assert plan.fired["smt.timeout"] == 2
    assert plan.hits["smt.timeout"] == 5


@pytest.mark.parametrize("bad", [
    "", "smt.timeout", "@3", "smt.timeout@", "smt.timeout@x", "smt.timeout@-1",
])
def test_parse_fault_spec_rejects(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_should_fail_is_noop_without_plan():
    assert faults.active_plan() is None
    assert not should_fail("smt.timeout")


def test_resolve_fault_plan_precedence(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    assert resolve_fault_plan(None) is None
    monkeypatch.setenv(ENV_FAULTS, "smt.timeout@0")
    assert resolve_fault_plan(None).sites == {"smt.timeout": frozenset({0})}
    ready = FaultPlan({"x": "*"})
    assert resolve_fault_plan(ready) is ready
    monkeypatch.setenv(ENV_FAULTS, "0")
    assert resolve_fault_plan(None) is None


# -- smt.timeout --------------------------------------------------------------


def test_injected_smt_timeout_answers_unknown():
    install_plan(parse_fault_spec("smt.timeout@0"))
    x, y = mk_var("x", INT), mk_var("y", INT)
    hit = Solver()
    hit.add(mk_lt(x, y))
    assert hit.check() == UNKNOWN
    assert "injected timeout" in hit.unknown_reason
    # Only occurrence 0 was planned; the next query solves normally.
    miss = Solver()
    miss.add(mk_lt(x, y))
    assert miss.check() == SAT


# -- pool degradation ---------------------------------------------------------


def test_worker_crash_degrades_to_serial_bit_identically(monkeypatch):
    serial = run("sumi", jobs=1, monkeypatch=monkeypatch)
    crashed = run("sumi", jobs=2, force_fork=True, monkeypatch=monkeypatch,
                  faults="pool.worker_crash@0")
    assert fingerprint(crashed) == fingerprint(serial)
    assert crashed.metrics.counter("resil.fault.pool.worker_crash") == 1
    assert crashed.metrics.counter("resil.pool.degraded") >= 1
    assert crashed.metrics.counter("resil.pool.worker_death") >= 1


def test_worker_hang_is_rescued_by_task_timeout(monkeypatch):
    # Regression for the pool liveness gap: before the per-task timeout,
    # a wedged worker blocked map_ordered forever.  With the timeout the
    # batch degrades to serial and the run completes bit-identically.
    serial = run("sumi", jobs=1, monkeypatch=monkeypatch)
    hung = run("sumi", jobs=2, force_fork=True, monkeypatch=monkeypatch,
               faults="pool.worker_hang@0", pool_task_timeout=1.5)
    assert fingerprint(hung) == fingerprint(serial)
    assert hung.metrics.counter("resil.fault.pool.worker_hang") == 1
    assert hung.metrics.counter("resil.pool.degraded") >= 1
    assert hung.metrics.counter("resil.pool.task_timeout") >= 1


def test_pool_timeout_env_resolution(monkeypatch):
    from repro.perf.pool import ENV_POOL_TIMEOUT, resolve_task_timeout

    monkeypatch.delenv(ENV_POOL_TIMEOUT, raising=False)
    assert resolve_task_timeout(None) is None
    assert resolve_task_timeout(2.5) == 2.5
    assert resolve_task_timeout(0) is None  # zero disables
    monkeypatch.setenv(ENV_POOL_TIMEOUT, "7")
    assert resolve_task_timeout(None) == 7.0
    assert resolve_task_timeout(1.0) == 1.0  # config wins
    monkeypatch.setenv(ENV_POOL_TIMEOUT, "junk")
    assert resolve_task_timeout(None) is None


# -- cache quarantine ---------------------------------------------------------


def test_corrupt_cache_shard_is_quarantined_and_recomputed(tmp_path,
                                                           monkeypatch):
    monkeypatch.delenv("REPRO_QUERY_CACHE", raising=False)
    plain = run("runlength", monkeypatch=monkeypatch, absint=False)
    cache_dir = str(tmp_path) + "/"
    run("runlength", query_cache=cache_dir, absint=False)  # prime the disk tier
    assert glob.glob(os.path.join(str(tmp_path), "*.jsonl*"))
    poisoned = run("runlength", query_cache=cache_dir, absint=False,
                   faults="cache.corrupt_shard@0")
    assert fingerprint(poisoned) == fingerprint(plain)
    assert poisoned.metrics.counter("resil.fault.cache.corrupt_shard") == 1
    assert poisoned.metrics.counter("resil.cache.quarantined") >= 1
    bad = glob.glob(os.path.join(str(tmp_path), "*.bad"))
    assert bad, "quarantine should leave a .bad file for the operator"
    # A later cached run must not trip over the quarantined file.
    again = run("runlength", query_cache=cache_dir, absint=False)
    assert fingerprint(again) == fingerprint(plain)


# -- candidate demotion -------------------------------------------------------


class AlwaysUnknownChecker:
    """A checker whose SMT tier is permanently wedged (every check times
    out).  Demotion must retire candidates instead of accepting them on
    unknown-optimism forever."""

    def __init__(self):
        from repro.pins.checker import CheckOutcome, UNKNOWN

        self._outcome = CheckOutcome(UNKNOWN)
        self.calls = 0

    def check(self, constraint, solution):
        self.calls += 1
        return self._outcome


def _demotion_fixture():
    from repro.lang import ast
    from repro.lang.parser import parse_expr, parse_pred
    from repro.pins.constraints import Constraint
    from repro.pins.solve import SolveSession, SolveStats
    from repro.pins.template import HoleSpace
    from repro.symexec.paths import Def

    space = HoleSpace(
        expr_holes=(("e1", (parse_expr("0"), parse_expr("1"))),),
        pred_holes=(("p1", (parse_pred("x < 1"), parse_pred("x > 1"))),),
        max_pred_conj=2,
    )
    constraints = [
        Constraint(kind="bounded", label=f"c{i}",
                   items=(Def("t", 1, ast.Unknown("e1")),))
        for i in range(4)
    ]
    return SolveSession(space), constraints, SolveStats()


def test_repeated_unknowns_demote_candidate():
    from repro.pins.solve import solve

    session, constraints, stats = _demotion_fixture()
    checker = AlwaysUnknownChecker()
    sols = solve(session, constraints, checker, tests=[], m=4, stats=stats,
                 eager_limit=0, demote_unknowns=3)
    # Every candidate hits 3 unknowns and is demoted; none are accepted.
    assert sols == []
    assert stats.demoted == 8  # 2 e1 choices x 4 p1 subsets
    # Cached unknowns mean only the first candidate per e1 value actually
    # reaches the checker (3 calls each); re-proposals demote in pre-scan.
    assert checker.calls == 6


def test_demotion_disabled_preserves_unknown_optimism():
    from repro.pins.solve import solve

    session, constraints, stats = _demotion_fixture()
    checker = AlwaysUnknownChecker()
    sols = solve(session, constraints, checker, tests=[], m=4, stats=stats,
                 eager_limit=0, demote_unknowns=None)
    assert len(sols) == 4  # unknown never blocks a candidate (paper behaviour)
    assert stats.demoted == 0


# -- persistent fleet degradation ---------------------------------------------


def test_persistent_warmup_hang_degrades_not_stalls(monkeypatch):
    # Liveness gap closed by the warm-up handshake: a persistent worker
    # wedged by pool.worker_hang at hit 0 faults *before* any task is in
    # flight, so the per-task timeout can never fire.  The handshake
    # deadline must trip instead, degrade the whole fleet, and let the
    # run finish serially and bit-identically.
    monkeypatch.setenv("REPRO_POOL_WARMUP_TIMEOUT", "1.5")
    serial = run("sumi", jobs=1, monkeypatch=monkeypatch)
    hung = run("sumi", jobs=2, force_fork=True, monkeypatch=monkeypatch,
               workers="persistent", faults="pool.worker_hang@0")
    assert fingerprint(hung) == fingerprint(serial)
    assert hung.metrics.counter("resil.fault.pool.worker_hang") == 1
    assert hung.metrics.counter("resil.pool.degraded") >= 1
    assert hung.metrics.counter("resil.pool.warmup_failed") >= 1


def test_persistent_warmup_crash_degrades(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_WARMUP_TIMEOUT", "10")
    serial = run("sumi", jobs=1, monkeypatch=monkeypatch)
    crashed = run("sumi", jobs=2, force_fork=True, monkeypatch=monkeypatch,
                  workers="persistent", faults="pool.worker_crash@0")
    assert fingerprint(crashed) == fingerprint(serial)
    assert crashed.metrics.counter("resil.fault.pool.worker_crash") == 1
    assert crashed.metrics.counter("resil.pool.warmup_failed") >= 1


def test_persistent_task_crash_degrades_mid_run(monkeypatch):
    # Hits 0/1 are consumed by the two workers' warm-up checks; hit 2 is
    # the first task-level injection, so the fleet survives warm-up and
    # dies mid-batch — exercising worker-death detection and the
    # serial-prefix merge.
    serial = run("sumi", jobs=1, monkeypatch=monkeypatch)
    crashed = run("sumi", jobs=2, force_fork=True, monkeypatch=monkeypatch,
                  workers="persistent", faults="pool.worker_crash@2")
    assert fingerprint(crashed) == fingerprint(serial)
    assert crashed.metrics.counter("resil.pool.worker_death") >= 1
    assert crashed.metrics.counter("resil.pool.degraded") >= 1
