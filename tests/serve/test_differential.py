"""The service's determinism contract, enforced end to end.

A job submitted over the HTTP API must produce inverse digests
**bit-identical** to the same program run one-shot via ``run_pins`` —
through the serial backend, through the persistent in-run worker fleet,
and on a warm repeat where the serve worker reuses its incremental SMT
contexts and the fleet-shared disk cache from the previous job.  This
is the test the serving layer leans on; keep it green.
"""

import pytest

from repro.pins import PinsConfig, run_pins
from repro.serve import ServeConfig, ServerThread
from repro.suite import get_benchmark, resolved_budget

from .conftest import requires_fork

pytestmark = requires_fork

CONFIGS = {
    "sumi": dict(m=10, max_iterations=25, seed=1),
    "runlength": dict(m=6, max_iterations=6, seed=1, absint=False),
}

BACKENDS = {
    "serial": dict(workers="serial"),
    "persistent": dict(jobs=2, workers="persistent"),
}


def one_shot(name, config):
    result = run_pins(get_benchmark(name).task, PinsConfig(**config))
    return result


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_served_digest_matches_one_shot(name, backend, tmp_path,
                                        monkeypatch):
    if backend == "persistent":
        # Exercise real forked inner pools even on single-core runners.
        monkeypatch.setenv("REPRO_JOBS_FORCE", "1")
    config = dict(CONFIGS[name], **BACKENDS[backend])
    # Pin the budget explicitly on both sides so the service's profile
    # defaulting cannot diverge from the reference run.
    config["budget"] = resolved_budget(name)
    reference = one_shot(name, config)

    with ServerThread(ServeConfig(workers=1,
                                  cache_dir=str(tmp_path))) as client:
        job = client.submit(name, config=config)
        record = client.wait_for(job["id"], timeout=300)["result"]

    assert record["status"] == reference.status
    assert record["solutions"] == len(reference.solutions)
    assert record["inverse_digest"] == reference.inverse_digest(), (
        f"{name}/{backend}: served inverse digest differs from one-shot "
        f"run_pins — the service broke the determinism contract")


def test_warm_repeat_is_bit_identical(tmp_path):
    """Jobs 2..N on a warm worker (hot ContextPool, populated shared
    cache) must reproduce job 1's digest exactly — warm state is a
    wall-time optimization, never a trajectory change."""
    name = "sumi"
    config = dict(CONFIGS[name], budget=resolved_budget(name))
    reference = one_shot(name, config)

    with ServerThread(ServeConfig(workers=1,
                                  cache_dir=str(tmp_path))) as client:
        digests = []
        cache_hits = []
        for _ in range(3):
            job = client.submit(name, config=config)
            record = client.wait_for(job["id"], timeout=300)["result"]
            digests.append(record["inverse_digest"])
            cache_hits.append(record["cache"]["hits"])

    assert digests == [reference.inverse_digest()] * 3
    # The shared cache did actually warm up across jobs (the memo is
    # doing the wall-time work, while the digests above prove it is
    # invisible to the synthesis trajectory).
    assert cache_hits[-1] > cache_hits[0]


def test_cold_contexts_flag_preserves_digest(tmp_path):
    """``warm_contexts: false`` (fresh incremental contexts per job) is
    the determinism fallback knob; it must agree with the warm path."""
    name = "sumi"
    config = dict(CONFIGS[name], budget=resolved_budget(name))
    reference = one_shot(name, config)

    with ServerThread(ServeConfig(workers=1,
                                  cache_dir=str(tmp_path))) as client:
        for warm in (True, False):
            job = client.submit(
                name, config=dict(config, warm_contexts=warm))
            record = client.wait_for(job["id"], timeout=300)["result"]
            assert record["inverse_digest"] == reference.inverse_digest()
