"""API surface of the synthesis service: validation, lifecycle, events.

Covers the HTTP contract end to end — submission validation (400),
unknown jobs (404), result-before-terminal (409), the live event
stream, and the stats/tenants introspection endpoints — plus the pure
pieces (request validation, round-robin fairness) without a server.
"""

import pytest

from repro.serve import (BadRequest, JobRequest, JobStore, ServeConfig,
                         ServeError, ServerThread)
from repro.serve.queue import JobQueue

from .conftest import requires_fork

pytestmark = requires_fork


# -- pure units (no server) -------------------------------------------------


def test_request_validation_rejects_garbage():
    with pytest.raises(BadRequest):
        JobRequest.from_payload(None)
    with pytest.raises(BadRequest):
        JobRequest.from_payload({"config": {}})  # no program
    with pytest.raises(BadRequest):
        JobRequest.from_payload({"program": "not_a_benchmark"})
    with pytest.raises(BadRequest):
        JobRequest.from_payload({"program": "sumi", "tenant": ""})
    with pytest.raises(BadRequest):
        JobRequest.from_payload({"program": "sumi",
                                 "config": {"query_cache": "/tmp/x"}})


def test_request_validation_accepts_known_config_keys():
    request = JobRequest.from_payload(
        {"program": "sumi", "tenant": "alice",
         "config": {"m": 10, "seed": 1, "warm_contexts": False}})
    assert request.program == "sumi"
    assert request.tenant == "alice"
    assert request.to_wire("smt=5")["budget"] == "smt=5"


def test_round_robin_interleaves_tenants():
    """A tenant flooding the queue cannot starve another: dequeues
    alternate across tenants regardless of arrival order."""
    store = JobStore()
    queue = JobQueue(store, fleet=None, ledger=None)  # type: ignore[arg-type]
    for _ in range(3):
        queue.submit(store.create(JobRequest("sumi", tenant="flood"), None))
    queue.submit(store.create(JobRequest("sumi", tenant="quiet"), None))
    order = [queue._next_job().request.tenant for _ in range(4)]
    assert order[:2] in (["flood", "quiet"], ["quiet", "flood"])
    assert "quiet" in order[:2]


# -- live server ------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(workers=1)) as client:
        yield client


def test_health_and_stats(server):
    assert server.health()["ok"] is True
    stats = server.stats()
    assert stats["fleet"]["workers"] == 1
    assert "jobs" in stats and "queued" in stats


def test_submit_unknown_program_is_400(server):
    with pytest.raises(ServeError) as exc:
        server.submit("no_such_program")
    assert exc.value.status == 400
    assert exc.value.payload["error"] == "bad_request"


def test_submit_bad_config_key_is_400(server):
    with pytest.raises(ServeError) as exc:
        server.submit("sumi", config={"trace": "/tmp/t.jsonl"})
    assert exc.value.status == 400


def test_unknown_job_is_404(server):
    with pytest.raises(ServeError) as exc:
        server.status("job-999999")
    assert exc.value.status == 404


def test_job_lifecycle_events_and_result(server):
    job = server.submit("sumi", config={"m": 10, "max_iterations": 25,
                                        "seed": 1})
    assert job["state"] == "queued"
    # The profile default budget is applied when the config has none.
    assert "smt=" in job["budget"]

    # Result before terminal is a 409 (the job just entered the queue;
    # the window only closes if the run finishes within one roundtrip).
    try:
        server.result(job["id"])
    except ServeError as exc:
        assert exc.status == 409
        assert exc.payload["error"] == "not_finished"

    final = server.wait_for(job["id"], timeout=120)
    assert final["state"] == "done"
    record = final["result"]
    assert record["status"] == "stabilized"
    assert record["solutions"] >= 1
    assert len(record["inverses"]) == record["solutions"]
    assert record["inverse_digest"]

    # The event stream carries the service lifecycle marks and the
    # worker's live pins.* spans, with long-poll cursor semantics.
    events = server.events(job["id"])
    names = [e["name"] for e in events["events"]]
    assert "serve.queued" in names
    assert "serve.dispatched" in names
    assert any(n.startswith("pins.") for n in names)
    assert events["next"] == len(events["events"])
    tail = server.events(job["id"], since=events["next"], wait=0.1)
    assert tail["events"] == []
    assert tail["state"] == "done"


def test_jobs_listing_and_compact(server):
    listing = server.jobs()["jobs"]
    assert any(j["program"] == "sumi" for j in listing)
    # No cache_dir configured: compaction is a no-op, not an error.
    assert server.compact() == {"compacted": 0}


def test_compact_store_finds_shard_only_slugs(tmp_path):
    # A fresh store holds only per-pid worker shards — the base
    # <slug>.jsonl is first created *by* compaction, so discovery must
    # not depend on it already existing.
    from repro.perf.cache import QueryCache
    from repro.serve import compact_store

    cache = QueryCache(str(tmp_path / "sumi.jsonl"))
    cache.store("k1", "unsat", None, [])
    cache.close()
    assert not (tmp_path / "sumi.jsonl").exists()
    assert list(tmp_path.glob("sumi.jsonl.shard-*"))

    assert compact_store(str(tmp_path)) == 1
    assert (tmp_path / "sumi.jsonl").exists()
    assert not list(tmp_path.glob("sumi.jsonl.shard-*"))
    assert "k1" in (tmp_path / "sumi.jsonl").read_text()
