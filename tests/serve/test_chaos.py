"""Chaos against the service itself: dead workers, corrupt shared cache.

Satellite of the resilience story (DESIGN.md §12) lifted to the serving
layer: a worker killed mid-job is respawned and the job requeued and
re-run to the *same* answer; a corrupted shard in the fleet-shared
cache store is quarantined and recomputed; a wedged worker is reaped by
the job timeout.  In every case the client sees a finished job with the
correct digest — never a traceback, never a wedged queue.
"""

import glob
import os

import pytest

from repro.pins import PinsConfig, run_pins
from repro.serve import ServeConfig, ServerThread
from repro.suite import get_benchmark, resolved_budget

from .conftest import requires_fork

pytestmark = requires_fork

NAME = "sumi"
CONFIG = dict(m=10, max_iterations=25, seed=1)


@pytest.fixture(scope="module")
def reference():
    config = dict(CONFIG, budget=resolved_budget(NAME))
    return run_pins(get_benchmark(NAME).task, PinsConfig(**config))


def _corrupt_store(cache_dir: str) -> str:
    """Vandalize one shared-store file the way an interrupted writer or
    bad disk would: garbage bytes followed by more data, so the damage
    is not a torn final line and must go through the quarantine path
    (mirrors ``QueryCache._inject_corruption``)."""
    files = sorted(glob.glob(os.path.join(cache_dir, "*.jsonl"))
                   + glob.glob(os.path.join(cache_dir, "*.jsonl.shard-*")))
    assert files, "expected the first job to have populated the store"
    victim = files[0]
    with open(victim, "r+", encoding="utf-8") as fh:
        body = fh.read()
        fh.seek(0)
        fh.write("\x00garbage{not json\n" + body + "{}\n")
    return victim


def test_worker_crash_and_corrupt_shard_degrade_correctly(tmp_path,
                                                          reference):
    """Kill the first dispatched worker AND corrupt the shared store:
    both jobs still finish with the one-shot digest, and the resilience
    machinery visibly fired (respawn, requeue, quarantine)."""
    config = ServeConfig(workers=2, cache_dir=str(tmp_path),
                         faults="serve.worker_crash@0")
    with ServerThread(config) as client:
        # Job 1: its dispatch is eaten by serve.worker_crash@0 — the
        # worker hard-exits, the dispatcher respawns it and requeues.
        job1 = client.submit(NAME, config=CONFIG)
        final1 = client.wait_for(job1["id"], timeout=300)
        assert final1["state"] == "done"
        assert final1["attempts"] == 2, "job should have been requeued once"
        record1 = final1["result"]
        assert record1["inverse_digest"] == reference.inverse_digest()
        names = [e["name"] for e in client.events(job1["id"])["events"]]
        assert "serve.requeued" in names

        stats = client.stats()
        assert stats["fleet"]["deaths"] >= 1
        assert stats["fleet"]["respawns"] >= 1
        assert stats["requeues"] >= 1
        # The fleet healed to full strength.
        assert stats["fleet"]["workers"] == 2

        # Now corrupt the shared store on disk and run job 2: the bad
        # file is quarantined (renamed *.bad), its entries recomputed,
        # and the digest is still bit-identical.
        _corrupt_store(str(tmp_path))
        job2 = client.submit(NAME, config=CONFIG)
        final2 = client.wait_for(job2["id"], timeout=300)
        assert final2["state"] == "done"
        record2 = final2["result"]
        assert record2["inverse_digest"] == reference.inverse_digest()
        assert record2["cache"]["quarantined"] >= 1
        assert glob.glob(os.path.join(str(tmp_path), "*.bad"))

        # The queue never wedged: nothing left queued or running.
        stats = client.stats()
        assert stats["queued"] == 0
        assert stats["jobs"] == {"done": 2}


def test_wedged_worker_is_reaped_and_job_requeued(tmp_path, reference):
    """serve.worker_hang@0 wedges the only worker; the job timeout must
    reap it, respawn, requeue, and still deliver the correct answer."""
    config = ServeConfig(workers=1, cache_dir=str(tmp_path),
                         faults="serve.worker_hang@0", job_timeout=1.5)
    with ServerThread(config) as client:
        job = client.submit(NAME, config=CONFIG)
        final = client.wait_for(job["id"], timeout=300)
        assert final["state"] == "done"
        assert final["attempts"] == 2
        assert final["result"]["inverse_digest"] == reference.inverse_digest()
        stats = client.stats()
        assert stats["fleet"]["hangs"] >= 1
        assert stats["fleet"]["respawns"] >= 1


def test_repeated_worker_loss_fails_job_cleanly(reference):
    """A job whose worker dies on every dispatch exhausts max_attempts
    and fails with a diagnostic — it must not requeue forever."""
    config = ServeConfig(workers=1, faults="serve.worker_crash@*",
                         max_attempts=2)
    with ServerThread(config) as client:
        job = client.submit(NAME, config=CONFIG)
        final = client.wait_for(job["id"], timeout=120)
        assert final["state"] == "failed"
        assert "worker lost" in final["error"]
        # The service survives: the fleet healed and accepts new work.
        assert client.health()["ok"] is True
