"""Multi-tenant admission control: clamping, isolation, rejection.

The satellite scenario from the ISSUE: two tenants run concurrently;
the one with an exhausting ``smt=`` quota gets ``budget_exhausted``
with the anytime best-so-far solution set, while the other tenant's job
is completely unaffected — no starvation, no shared-state bleed.
"""

import pytest

from repro.pins import PinsConfig, run_pins
from repro.serve import ServeConfig, ServeError, ServerThread, TenantQuota
from repro.suite import get_benchmark, resolved_budget

from .conftest import requires_fork

pytestmark = requires_fork

NAME = "sumi"
CONFIG = dict(m=10, max_iterations=25, seed=1)


def test_quota_clamp_and_tenant_isolation(tmp_path):
    reference = run_pins(
        get_benchmark(NAME).task,
        PinsConfig(**dict(CONFIG, budget=resolved_budget(NAME))))
    assert reference.status == "stabilized"

    # sumi stabilizes at ~76 SMT queries; smt=40 forces the anytime
    # path with at least one best-so-far solution already found.
    config = ServeConfig(workers=2, cache_dir=str(tmp_path),
                         tenants={"small": "smt=40"})
    with ServerThread(config) as client:
        # Both tenants submit at once; two workers run them concurrently.
        small = client.submit(NAME, tenant="small", config=CONFIG)
        big = client.submit(NAME, tenant="big", config=CONFIG)

        # The small tenant's budget was clamped at admission time.
        assert "smt=40" in small["budget"]
        assert "smt=1500" in big["budget"]  # profile default, unclamped

        small_rec = client.wait_for(small["id"], timeout=300)["result"]
        big_rec = client.wait_for(big["id"], timeout=300)["result"]

    # Small tenant: cooperative exhaustion with best-so-far, no error.
    assert small_rec["status"] == "budget_exhausted"
    assert small_rec["budget_exhausted"] == "smt_queries"
    assert small_rec["solutions"] >= 1
    assert small_rec["inverses"], "anytime result must carry the inverses"

    # Big tenant: byte-for-byte what a one-shot run produces — the
    # neighbor's exhaustion never bled into this run.
    assert big_rec["status"] == "stabilized"
    assert big_rec["inverse_digest"] == reference.inverse_digest()


def test_exhausted_tenant_is_rejected_while_others_admitted():
    config = ServeConfig(workers=1, tenants={"small": "smt=40"})
    with ServerThread(config) as client:
        job = client.submit(NAME, tenant="small", config=CONFIG)
        client.wait_for(job["id"], timeout=300)

        # Settlement charged the ~41 queries actually used: the tenant
        # is out of allowance and now rejected at admission.
        with pytest.raises(ServeError) as exc:
            client.submit(NAME, tenant="small", config=CONFIG)
        assert exc.value.status == 429
        assert exc.value.payload["error"] == "budget_exhausted"

        # A different tenant is admitted as if nothing happened.
        other = client.submit(NAME, tenant="other", config=CONFIG)
        record = client.wait_for(other["id"], timeout=300)["result"]
        assert record["status"] == "stabilized"

        snapshot = client.tenants()
        assert snapshot["small"]["remaining_smt_queries"] == 0
        assert snapshot["small"]["rejected"] == 1
        assert snapshot["other"]["rejected"] == 0


def test_concurrency_cap_rejects_queue_full():
    config = ServeConfig(workers=1,
                         tenants={"cap": TenantQuota(max_active=1)})
    with ServerThread(config) as client:
        first = client.submit(NAME, tenant="cap", config=CONFIG)
        # Second submission while the first is still in flight: 429.
        with pytest.raises(ServeError) as exc:
            client.submit(NAME, tenant="cap", config=CONFIG)
        assert exc.value.status == 429
        assert exc.value.payload["error"] == "queue_full"
        # Uncapped tenants are untouched by the neighbor's cap.
        other = client.submit(NAME, tenant="roomy", config=CONFIG)
        client.wait_for(first["id"], timeout=300)
        client.wait_for(other["id"], timeout=300)
        # Once the first job settled, the capped tenant is admitted again.
        retry = client.submit(NAME, tenant="cap", config=CONFIG)
        assert client.wait_for(retry["id"], timeout=300)["state"] == "done"
