"""Shared fixtures for the service test battery.

Every test here spins up a real :class:`ServeApp` (HTTP server, asyncio
dispatcher, forked worker fleet) via :class:`ServerThread`, so the
battery exercises the same code paths as ``python -m repro.serve``.
The whole directory is skipped on platforms without the ``fork`` start
method — the fleet, like the perf pools, requires it.
"""

import multiprocessing

import pytest

from repro.resil.faults import uninstall_plan

try:
    multiprocessing.get_context("fork")
    HAS_FORK = True
except ValueError:  # pragma: no cover - non-fork platforms
    HAS_FORK = False

requires_fork = pytest.mark.skipif(
    not HAS_FORK, reason="repro.serve fleet requires the fork start method")


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Serve tests control budgets/faults/caches explicitly; ambient
    REPRO_* state (e.g. from a traced or chaos-lite CI job) must not
    leak into the forked workers."""
    uninstall_plan()
    for var in ("REPRO_FAULTS", "REPRO_BUDGET", "REPRO_QUERY_CACHE",
                "REPRO_JOBS", "REPRO_WORKERS", "REPRO_TRACE",
                "REPRO_POOL_TIMEOUT"):
        monkeypatch.delenv(var, raising=False)
    yield
    uninstall_plan()
