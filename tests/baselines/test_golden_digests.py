"""Golden per-program inverse-digest baselines.

``golden_digests.json`` pins, for every program that stabilizes
deterministically at the pinned config, the sha256 digest of the sorted
pretty-printed inverse set (:meth:`PinsResult.inverse_digest`).  The
pinned config uses *count* budgets only (no wall clock), so the cut
point — and therefore the digest — is machine-independent.

Slow-tier entries (``"slow": true``) are skip-marked by default; enable
them with ``--golden-slow``.  After an intentional synthesis change,
re-record the whole file with::

    PYTHONPATH=src python -m pytest tests/baselines/test_golden_digests.py \
        --regen-golden -q
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pins import PinsConfig, run_pins
from repro.suite import BENCHMARK_MODULES, get_benchmark

GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

DETERMINISTIC_STATUSES = {
    "stabilized", "no_solution", "paths_exhausted", "max_iterations",
    "budget_exhausted",
}


def golden_config() -> PinsConfig:
    cfg = GOLDEN["config"]
    assert "wall" not in (cfg["budget"] or ""), \
        "golden config must not use a wall budget (machine-dependent)"
    return PinsConfig(m=cfg["m"], max_iterations=cfg["iters"],
                      seed=cfg["seed"], budget=cfg["budget"])


def run_golden(name: str):
    result = run_pins(get_benchmark(name).task, golden_config())
    return result.status, result.inverse_digest()


@pytest.fixture(scope="module")
def regen_sink(request):
    """Collects regenerated entries and rewrites the JSON at teardown."""
    sink = {}
    yield sink
    if request.config.getoption("--regen-golden") and sink:
        data = {"config": GOLDEN["config"], "digests": sink}
        GOLDEN_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def test_golden_covers_only_registered_programs():
    assert set(GOLDEN["digests"]) <= set(BENCHMARK_MODULES)


@pytest.mark.parametrize("name", sorted(GOLDEN["digests"]))
def test_golden_inverse_digest(name, request, regen_sink):
    entry = GOLDEN["digests"][name]
    regen = request.config.getoption("--regen-golden")
    if (entry.get("slow") and not regen
            and not request.config.getoption("--golden-slow")):
        pytest.skip("slow golden tier; enable with --golden-slow")
    status, digest = run_golden(name)
    assert status in DETERMINISTIC_STATUSES
    if regen:
        record = {"status": status, "digest": digest}
        if entry.get("slow"):
            record["slow"] = True
        regen_sink[name] = record
        return
    assert status == entry["status"], (
        f"{name}: status {status!r} != golden {entry['status']!r} "
        f"(regen with --regen-golden if intentional)")
    assert digest == entry["digest"], (
        f"{name}: inverse digest drifted from golden baseline "
        f"({digest[:12]} vs {entry['digest'][:12]}); regen with "
        f"--regen-golden if intentional)")
