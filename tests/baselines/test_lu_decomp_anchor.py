"""Golden smoke anchor: lu_decomp's full-suite bench record, pinned.

lu_decomp is the suite's canary for the guided-axiom/region machinery:
at the full-suite config it deterministically explores 5 paths, exhausts
the ``paths=12`` budget dimension's search frontier with status
``paths_exhausted``, finds exactly 2 real inverses, and issues exactly
468 SMT queries.  Those numbers are the recorded ``full-suite`` row in
``BENCH_pins.json``; this test pins them so a trajectory change — even
one that still synthesizes correct inverses — is caught as a diff, not
discovered as a silent benchmark drift later.

The pin is config-exact: it only runs under the default analysis stack
(the ``--no-static-pruning`` CI pass legitimately changes the query
count and budget cut point, so the anchor skips there).
"""

import os

import pytest

from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark, resolved_budget

# The recorded full-suite row (BENCH_pins.json, label "full-suite").
EXPECTED_DIGEST = ("38cad06f844738042cf59637a28d931213c5a120"
                   "eff7bb701a082347863a24fe")
EXPECTED_QUERIES = 468
EXPECTED_SOLUTIONS = 2
EXPECTED_PATHS = 5
EXPECTED_BUDGET = "smt=1000;paths=12;wall=300"

_ANALYSIS_VARS = ("REPRO_STATIC_PRUNING", "REPRO_ABSINT", "REPRO_FWDBWD",
                  "REPRO_REGIONS", "REPRO_INCREMENTAL")


def _default_analysis_stack() -> bool:
    return all(os.environ.get(var, "").strip() in ("", "1", "true")
               for var in _ANALYSIS_VARS)


@pytest.mark.skipif(not _default_analysis_stack(),
                    reason="anchor pins the default analysis stack's "
                           "trajectory; REPRO_* overrides change it")
def test_lu_decomp_full_suite_record_is_pinned(monkeypatch):
    for var in ("REPRO_BUDGET", "REPRO_FAULTS", "REPRO_QUERY_CACHE",
                "REPRO_JOBS", "REPRO_WORKERS"):
        monkeypatch.delenv(var, raising=False)

    budget = resolved_budget("lu_decomp")
    assert budget == EXPECTED_BUDGET, (
        "lu_decomp's profile budget moved; re-record BENCH_pins.json "
        "and this anchor together")

    result = run_pins(get_benchmark("lu_decomp").task,
                      PinsConfig(m=10, max_iterations=30, seed=1,
                                 budget=budget))

    assert result.status == "paths_exhausted"
    assert result.stats.paths_explored == EXPECTED_PATHS
    assert len(result.solutions) == EXPECTED_SOLUTIONS
    assert result.metrics.counter("smt.queries") == EXPECTED_QUERIES, (
        "lu_decomp's SMT query profile drifted from the recorded "
        "full-suite matrix")
    assert result.inverse_digest() == EXPECTED_DIGEST, (
        "lu_decomp's inverse set drifted from the recorded full-suite "
        "matrix; if intentional, re-record BENCH_pins.json and update "
        "this anchor")
