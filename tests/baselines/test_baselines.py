"""Baseline tests: sketchlite CEGIS behaviour and ablation utilities."""

from repro.baselines.randompath import path_explosion
from repro.baselines.sketchlite import run_sketchlite
from repro.pins import build_template
from repro.suite import get_benchmark
from repro.validate.bmc import BmcBounds


def test_sketchlite_needs_bounds_and_solves():
    bench = get_benchmark("vector_shift")
    template = build_template(bench.task, static_pruning=False)
    bounds = BmcBounds(array_size=1, value_range=(0, 1), scalar_range=(0, 1),
                       max_cases=100)
    result = run_sketchlite(bench.task, template, bounds, timeout=60)
    assert result.status == "sat"
    assert result.solution is not None
    # CEGIS used counterexamples, not the whole space per candidate.
    assert result.counterexamples >= 1


def test_sketchlite_finitization_can_be_too_small():
    """With a trivial space (length-0 arrays only) wrong candidates pass —
    the same over-finitization hazard the paper describes for Sketch."""
    bench = get_benchmark("vector_shift")
    template = build_template(bench.task, static_pruning=False)
    bounds = BmcBounds(array_size=0, value_range=(0, 0), scalar_range=(0, 0),
                       max_cases=10)
    result = run_sketchlite(bench.task, template, bounds, timeout=30)
    assert result.status == "sat"  # vacuously correct on the tiny space


def test_sketchlite_unsupported_with_axioms():
    bench = get_benchmark("vector_rotate")
    template = build_template(bench.task, static_pruning=False)
    assert run_sketchlite(bench.task, template, BmcBounds(),
                          timeout=5).status == "unsupported"


def test_sketchlite_timeout_reported():
    bench = get_benchmark("sumi")
    template = build_template(bench.task, static_pruning=False)
    bounds = BmcBounds(scalar_range=(0, 30), max_cases=40)
    result = run_sketchlite(bench.task, template, bounds, timeout=0.0)
    assert result.status == "timeout"


def test_path_explosion_monotone_in_unroll():
    task = get_benchmark("inplace_rl").task
    p2 = path_explosion(task, 2).paths
    p3 = path_explosion(task, 3).paths
    assert p2 < p3
    assert p3 > 1000
