"""Shared pytest configuration.

``--no-static-pruning`` runs the whole suite with the static-analysis
pruning layer disabled (candidate-space pruning in ``build_template``
and constant-folding branch pruning in the symbolic executor), by
setting ``REPRO_STATIC_PRUNING=0`` for the session.  Use it for A/B
debugging: a test that fails only with pruning enabled points at the
analysis layer, one that fails both ways does not.

``--no-absint`` does the same for the abstract-interpretation layer
(``REPRO_ABSINT=0``): executor ⊥-guard pruning, the checker's abstract
screen, and abstract path-infeasibility all fall back to SMT.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--no-static-pruning", action="store_true", default=False,
        help="disable the repro.analysis static pruning layer "
             "(sets REPRO_STATIC_PRUNING=0 for the whole run)")
    parser.addoption(
        "--no-absint", action="store_true", default=False,
        help="disable the repro.analysis abstract-interpretation layer "
             "(sets REPRO_ABSINT=0 for the whole run)")
    parser.addoption(
        "--golden-slow", action="store_true", default=False,
        help="also run the slow-tier golden inverse-digest baselines "
             "(tests/baselines/golden_digests.json entries marked slow)")
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="re-record tests/baselines/golden_digests.json from the "
             "current code instead of asserting against it (implies "
             "--golden-slow)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "static_pruning: tests exercising the analysis pruning layer "
        "(skipped under --no-static-pruning)")
    config.addinivalue_line(
        "markers",
        "absint: tests exercising the abstract-interpretation layer "
        "(skipped under --no-absint)")
    if config.getoption("--no-static-pruning"):
        os.environ["REPRO_STATIC_PRUNING"] = "0"
    if config.getoption("--no-absint"):
        os.environ["REPRO_ABSINT"] = "0"


def pytest_collection_modifyitems(config, items):
    marks = []
    if config.getoption("--no-static-pruning"):
        marks.append(("static_pruning", pytest.mark.skip(
            reason="pruning disabled via --no-static-pruning")))
    if config.getoption("--no-absint"):
        marks.append(("absint", pytest.mark.skip(
            reason="abstract interpretation disabled via --no-absint")))
    for keyword, skip in marks:
        for item in items:
            if keyword in item.keywords:
                item.add_marker(skip)
