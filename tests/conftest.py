"""Shared pytest configuration.

``--no-static-pruning`` runs the whole suite with the static-analysis
pruning layer disabled (candidate-space pruning in ``build_template``
and constant-folding branch pruning in the symbolic executor), by
setting ``REPRO_STATIC_PRUNING=0`` for the session.  Use it for A/B
debugging: a test that fails only with pruning enabled points at the
analysis layer, one that fails both ways does not.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--no-static-pruning", action="store_true", default=False,
        help="disable the repro.analysis static pruning layer "
             "(sets REPRO_STATIC_PRUNING=0 for the whole run)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "static_pruning: tests exercising the analysis pruning layer "
        "(skipped under --no-static-pruning)")
    if config.getoption("--no-static-pruning"):
        os.environ["REPRO_STATIC_PRUNING"] = "0"


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--no-static-pruning"):
        return
    skip = pytest.mark.skip(
        reason="pruning disabled via --no-static-pruning")
    for item in items:
        if "static_pruning" in item.keywords:
            item.add_marker(skip)
