"""Tseitin CNF-builder tests."""

from repro.smt import terms as T
from repro.smt.cnf import CnfBuilder
from repro.smt.sat import SatSolver


def atoms():
    return (T.mk_le(T.mk_var("x", T.INT), T.mk_int(0)),
            T.mk_le(T.mk_var("y", T.INT), T.mk_int(0)))


def test_atom_proxy_is_stable():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, _ = atoms()
    assert builder.atom_literal(a) == builder.atom_literal(a)


def test_top_level_or_single_clause():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, b = atoms()
    builder.assert_formula(T.mk_or(a, b))
    assert sat.solve()
    model = sat.model()
    asserted = dict(builder.asserted_atoms(model))
    assert asserted[a] or asserted[b]


def test_nested_and_or_not():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, b = atoms()
    builder.assert_formula(T.mk_and(T.mk_or(a, b), T.mk_not(a)))
    assert sat.solve()
    asserted = dict(builder.asserted_atoms(sat.model()))
    assert asserted[b] and not asserted[a]


def test_true_false_constants():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    builder.assert_formula(T.TRUE)
    assert sat.solve()
    builder.assert_formula(T.FALSE)
    assert sat.solve() is False


def test_asserted_atoms_excludes_true_marker():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, _ = atoms()
    builder.assert_formula(T.mk_or(a, T.mk_not(a)))
    sat.solve()
    names = [atom for atom, _pol in builder.asserted_atoms(sat.model())]
    assert T.TRUE not in names


# -- guarded assertion (incremental scopes) -----------------------------------


def test_guard_makes_assertion_conditional():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, b = atoms()
    guard_var = sat.new_var()
    builder.assert_formula(T.mk_and(a, T.mk_not(b)), guard=-guard_var)
    # Active scope: both conjuncts forced.
    assert sat.solve(assumptions=(guard_var,))
    model = dict(builder.asserted_atoms(sat.model()))
    assert model[a] is True and model[b] is False
    # Inert scope: the opposite assignment is allowed.
    lb = builder.atom_literal(b)
    sat.add_clause([-guard_var])
    sat.add_clause([lb])
    assert sat.solve()
    assert sat.model()[lb] is True


def test_guard_applies_to_every_top_level_clause():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, b = atoms()
    guard_var = sat.new_var()
    # AND distributes the guard; OR appends it to the single clause.
    builder.assert_formula(T.mk_and(a, b), guard=-guard_var)
    builder.assert_formula(T.mk_or(a, b), guard=-guard_var)
    la, lb2 = builder.atom_literal(a), builder.atom_literal(b)
    sat.add_clause([-guard_var])
    sat.add_clause([-la])
    sat.add_clause([-lb2])
    # With the scope retired nothing above constrains a/b.
    assert sat.solve()


def test_tseitin_definitions_stay_unguarded():
    sat = SatSolver()
    builder = CnfBuilder(sat)
    a, b = atoms()
    guard_var = sat.new_var()
    disj = T.mk_or(a, b)
    builder.assert_formula(disj, guard=-guard_var)
    # Reusing the subformula in an unguarded assertion must still work:
    # its Tseitin definition is shared and globally consistent.
    builder.assert_formula(T.mk_not(T.mk_and(a, b)))
    assert sat.solve(assumptions=(guard_var,))
    model = dict(builder.asserted_atoms(sat.model()))
    assert (model[a] or model[b]) and not (model[a] and model[b])
