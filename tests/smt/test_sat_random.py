"""Property-based tests for the CDCL SAT solver.

Seeded random small CNFs are checked against a brute-force enumerator:
the solver's verdict must match, and every SAT model must actually
satisfy the formula.  No hypothesis dependency — the generator is a
plain ``random.Random`` with fixed seeds, so failures reproduce exactly.
"""

import random
from typing import Dict, List, Optional, Sequence

from repro.smt.sat import SatSolver, solve_cnf


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int,
               max_len: int = 3) -> List[List[int]]:
    clauses = []
    for _ in range(num_clauses):
        k = rng.randint(1, min(max_len, num_vars))
        chosen = rng.sample(range(1, num_vars + 1), k)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses


def brute_force(num_vars: int,
                clauses: Sequence[Sequence[int]]) -> Optional[Dict[int, bool]]:
    for bits in range(1 << num_vars):
        assign = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(assign[abs(lit)] == (lit > 0) for lit in clause)
               for clause in clauses):
            return assign
    return None


def satisfies(model: Dict[int, bool], clauses: Sequence[Sequence[int]]) -> bool:
    return all(any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
               for clause in clauses)


def test_random_cnfs_match_brute_force():
    for seed in range(60):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 8)
        # Around 4 clauses/var straddles the SAT/UNSAT phase transition,
        # so both verdicts are exercised.
        num_clauses = rng.randint(1, 4 * num_vars)
        clauses = random_cnf(rng, num_vars, num_clauses)
        expected = brute_force(num_vars, clauses)
        model = solve_cnf(clauses)
        if expected is None:
            assert model is None, (seed, clauses)
        else:
            assert model is not None, (seed, clauses)
            assert satisfies(model, clauses), (seed, clauses, model)


def test_random_cnfs_incremental_solving():
    """Adding clauses between solve() calls preserves correctness."""
    for seed in range(25):
        rng = random.Random(1000 + seed)
        num_vars = rng.randint(2, 6)
        batch1 = random_cnf(rng, num_vars, rng.randint(1, 2 * num_vars))
        batch2 = random_cnf(rng, num_vars, rng.randint(1, 2 * num_vars))
        solver = SatSolver()
        ok = all(solver.add_clause(c) for c in batch1)
        first = solver.solve() if ok else False
        assert (first is True) == (brute_force(num_vars, batch1) is not None), seed
        ok = ok and all(solver.add_clause(c) for c in batch2)
        second = solver.solve() if ok else False
        expected = brute_force(num_vars, batch1 + batch2)
        assert (second is True) == (expected is not None), (seed, batch1, batch2)
        if second:
            assert satisfies(solver.model(), batch1 + batch2), seed


# Fixed instances that exercise solver edge cases directly (no random
# generation, no UNSAT cores involved) — regression seeds for behaviours
# the random sweep may not hit on every seed set.
REGRESSION_INSTANCES = [
    # (clauses, expect_sat)
    ([[1]], True),
    ([[1], [-1]], False),
    ([[1, 2], [-1, 2], [1, -2], [-1, -2]], False),  # full binary cover
    ([[1, 1, 1]], True),  # duplicate literals collapse
    ([[1, -1], [2]], True),  # tautology clause is dropped
    ([[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [-1, 2]], True),
    # Unit chain forcing a root-level conflict only after propagation.
    ([[1], [-1, 2], [-2, 3], [-3, -1]], False),
    # Pigeonhole PHP(3,2): 3 pigeons, 2 holes; classic small UNSAT.
    ([[1, 2], [3, 4], [5, 6],
      [-1, -3], [-1, -5], [-3, -5],
      [-2, -4], [-2, -6], [-4, -6]], False),
]


def test_regression_instances():
    for clauses, expect_sat in REGRESSION_INSTANCES:
        model = solve_cnf(clauses)
        assert (model is not None) == expect_sat, clauses
        if model is not None:
            assert satisfies(model, clauses), clauses


def test_larger_random_instances_agree_on_verdict():
    """10-variable instances: too big to be trivial, still brute-forceable."""
    for seed in (7, 21, 42, 99):
        rng = random.Random(seed)
        clauses = random_cnf(rng, 10, rng.randint(20, 45), max_len=4)
        expected = brute_force(10, clauses)
        model = solve_cnf(clauses)
        assert (model is None) == (expected is None), (seed, clauses)
        if model is not None:
            assert satisfies(model, clauses), seed
