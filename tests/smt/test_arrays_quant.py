"""Array preprocessing and axiom-instantiation unit tests."""

from repro.smt import (
    ARR,
    INT,
    Axiom,
    mk_add,
    mk_app,
    mk_eq,
    mk_int,
    mk_not,
    mk_select,
    mk_store,
    mk_var,
)
from repro.smt.arrays import inline_array_definitions, read_over_write_lemmas
from repro.smt.quant import instantiate, match


def test_inline_array_definitions_substitutes_ssa():
    a0 = mk_var("A#0", ARR)
    a1 = mk_var("A#1", ARR)
    a2 = mk_var("A#2", ARR)
    k = mk_var("k", INT)
    defs = [
        mk_eq(a1, mk_store(a0, mk_int(0), mk_int(1))),
        mk_eq(a2, mk_store(a1, mk_int(1), mk_int(2))),
        mk_eq(mk_select(a2, k), mk_int(9)),
    ]
    out = inline_array_definitions(defs)
    # The final select must now read from an explicit store chain over A#0.
    target = out[-1]
    sel = target.args[0] if target.args[0].op == "select" else target.args[1]
    assert sel.args[0].op == "store"
    assert sel.args[0].args[0].args[0] is a0


def test_read_over_write_lemma_generated():
    a = mk_var("A", ARR)
    i, j = mk_var("i", INT), mk_var("j", INT)
    t = mk_select(mk_store(a, i, mk_int(5)), j)
    lemmas = read_over_write_lemmas([mk_eq(t, mk_int(0))])
    assert len(lemmas) == 1
    assert lemmas[0].op == "or"


def test_read_over_write_iterates_to_fixpoint():
    a = mk_var("A", ARR)
    chain = mk_store(mk_store(a, mk_int(0), mk_int(1)), mk_int(1), mk_int(2))
    t = mk_select(chain, mk_var("k", INT))
    lemmas = read_over_write_lemmas([mk_eq(t, mk_int(0))])
    # Two nested stores -> two lemmas (one per level).
    assert len(lemmas) == 2


def test_match_binds_variables():
    s = mk_var("?s", INT)
    pat = mk_app("f", [s], INT)
    ground = mk_app("f", [mk_int(3)], INT)
    subst = match(pat, ground, {s})
    assert subst == {s: mk_int(3)}
    assert match(pat, mk_app("g", [mk_int(3)], INT), {s}) is None


def test_match_respects_sorts():
    s = mk_var("?s", ARR)
    assert match(s, mk_int(3), {s}) is None


def test_instantiate_simple_axiom():
    v = mk_var("?v", INT)
    fv = mk_app("f", [v], INT)
    ax = Axiom("f_pos", (v,), mk_eq(fv, mk_add(v, mk_int(1))), (fv,))
    ground = mk_eq(mk_app("f", [mk_int(5)], INT), mk_var("r", INT))
    instances = instantiate([ax], [ground])
    assert len(instances) == 1


def test_instantiate_multi_pattern():
    a = mk_var("?a", INT)
    b = mk_var("?b", INT)
    fa = mk_app("f", [a], INT)
    gb = mk_app("g", [b], INT)
    ax = Axiom("fg", (a, b), mk_eq(fa, gb), ((fa, gb),))
    assertions = [mk_eq(mk_app("f", [mk_int(1)], INT), mk_var("u", INT)),
                  mk_eq(mk_app("g", [mk_int(2)], INT), mk_var("w", INT))]
    instances = instantiate([ax], assertions)
    assert len(instances) == 1


def test_instantiation_rounds_chain():
    # f(x) creates g(f(x)) terms, which the second round can match.
    v = mk_var("?v", INT)
    fv = mk_app("f", [v], INT)
    ax1 = Axiom("wrap", (v,), mk_eq(mk_app("g", [fv], INT), mk_int(0)), (fv,))
    g_inner = mk_var("?w", INT)
    gw = mk_app("g", [g_inner], INT)
    ax2 = Axiom("gzero", (g_inner,), mk_not(mk_eq(gw, mk_int(1))), (gw,))
    assertions = [mk_eq(mk_app("f", [mk_int(3)], INT), mk_var("r", INT))]
    instances = instantiate([ax1, ax2], assertions, rounds=2)
    names = len(instances)
    assert names >= 2  # wrap instance plus gzero on the new g-term


def test_instantiate_deduplicates():
    v = mk_var("?v", INT)
    fv = mk_app("f", [v], INT)
    ax = Axiom("f_ax", (v,), mk_eq(fv, v), (fv,))
    ground = mk_eq(mk_app("f", [mk_int(5)], INT), mk_int(5))
    once = instantiate([ax], [ground, ground], rounds=3)
    assert len(once) == 1
