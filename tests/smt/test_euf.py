"""Congruence-closure tests."""

import pytest

from repro.smt import terms as T
from repro.smt.euf import CongruenceClosure, EufConflict


def f(x):
    return T.mk_app("f", [x], T.INT)


def test_reflexive_and_transitive():
    cc = CongruenceClosure()
    x, y, z = (T.mk_var(n, T.INT) for n in "xyz")
    cc.merge(x, y)
    cc.merge(y, z)
    assert cc.are_equal(x, z)


def test_congruence_propagates():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.add(f(x))
    cc.add(f(y))
    cc.merge(x, y)
    assert cc.are_equal(f(x), f(y))


def test_congruence_added_after_merge():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.merge(x, y)
    cc.add(f(x))
    cc.add(f(y))
    assert cc.are_equal(f(x), f(y))


def test_disequality_conflict():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.assert_diseq(f(x), f(y))
    with pytest.raises(EufConflict):
        cc.merge(x, y)


def test_distinct_constants_conflict():
    cc = CongruenceClosure()
    x = T.mk_var("x", T.INT)
    cc.merge(x, T.mk_int(1))
    with pytest.raises(EufConflict):
        cc.merge(x, T.mk_int(2))


def test_constant_of():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.merge(x, T.mk_int(7))
    cc.merge(y, x)
    assert cc.constant_of(y) == 7
    assert cc.constant_of(T.mk_var("unseen", T.INT)) is None


def test_nested_congruence():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    fx, fy = f(x), f(y)
    ffx, ffy = f(fx), f(fy)
    cc.add(ffx)
    cc.add(ffy)
    cc.merge(x, y)
    assert cc.are_equal(ffx, ffy)


def test_int_equalities_spanning():
    cc = CongruenceClosure()
    x, y, z = (T.mk_var(n, T.INT) for n in "xyz")
    cc.merge(x, y)
    cc.merge(y, z)
    pairs = list(cc.int_equalities())
    # Spanning set: enough pairs to reconstruct one class of 3 members.
    assert len(pairs) >= 2


def test_select_store_are_congruent_ops():
    cc = CongruenceClosure()
    a = T.mk_var("A", T.ARR)
    i, j = T.mk_var("i", T.INT), T.mk_var("j", T.INT)
    si, sj = T.mk_select(a, i), T.mk_select(a, j)
    cc.add(si)
    cc.add(sj)
    cc.merge(i, j)
    assert cc.are_equal(si, sj)
