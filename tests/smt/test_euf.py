"""Congruence-closure tests."""

import pytest

from repro.smt import terms as T
from repro.smt.euf import CongruenceClosure, EufConflict


def f(x):
    return T.mk_app("f", [x], T.INT)


def test_reflexive_and_transitive():
    cc = CongruenceClosure()
    x, y, z = (T.mk_var(n, T.INT) for n in "xyz")
    cc.merge(x, y)
    cc.merge(y, z)
    assert cc.are_equal(x, z)


def test_congruence_propagates():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.add(f(x))
    cc.add(f(y))
    cc.merge(x, y)
    assert cc.are_equal(f(x), f(y))


def test_congruence_added_after_merge():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.merge(x, y)
    cc.add(f(x))
    cc.add(f(y))
    assert cc.are_equal(f(x), f(y))


def test_disequality_conflict():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.assert_diseq(f(x), f(y))
    with pytest.raises(EufConflict):
        cc.merge(x, y)


def test_distinct_constants_conflict():
    cc = CongruenceClosure()
    x = T.mk_var("x", T.INT)
    cc.merge(x, T.mk_int(1))
    with pytest.raises(EufConflict):
        cc.merge(x, T.mk_int(2))


def test_constant_of():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    cc.merge(x, T.mk_int(7))
    cc.merge(y, x)
    assert cc.constant_of(y) == 7
    assert cc.constant_of(T.mk_var("unseen", T.INT)) is None


def test_nested_congruence():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    fx, fy = f(x), f(y)
    ffx, ffy = f(fx), f(fy)
    cc.add(ffx)
    cc.add(ffy)
    cc.merge(x, y)
    assert cc.are_equal(ffx, ffy)


def test_int_equalities_spanning():
    cc = CongruenceClosure()
    x, y, z = (T.mk_var(n, T.INT) for n in "xyz")
    cc.merge(x, y)
    cc.merge(y, z)
    pairs = list(cc.int_equalities())
    # Spanning set: enough pairs to reconstruct one class of 3 members.
    assert len(pairs) >= 2


def test_select_store_are_congruent_ops():
    cc = CongruenceClosure()
    a = T.mk_var("A", T.ARR)
    i, j = T.mk_var("i", T.INT), T.mk_var("j", T.INT)
    si, sj = T.mk_select(a, i), T.mk_select(a, j)
    cc.add(si)
    cc.add(sj)
    cc.merge(i, j)
    assert cc.are_equal(si, sj)


# -- proof forest / explain ---------------------------------------------------


def test_explain_direct_merge():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    eq = T.mk_eq(x, y)
    cc.merge(x, y, reason=eq)
    assert cc.explain([(x, y)]) == [eq]


def test_explain_transitive_chain():
    cc = CongruenceClosure()
    x, y, z, w = (T.mk_var(n, T.INT) for n in "xyzw")
    e1, e2, e3 = T.mk_eq(x, y), T.mk_eq(y, z), T.mk_eq(z, w)
    cc.merge(x, y, reason=e1)
    cc.merge(y, z, reason=e2)
    cc.merge(z, w, reason=e3)
    # x = w needs all three links; x = y needs only the first.
    assert set(map(id, cc.explain([(x, w)]))) == {id(e1), id(e2), id(e3)}
    assert cc.explain([(x, y)]) == [e1]


def test_explain_is_minimal_across_branches():
    cc = CongruenceClosure()
    a, b, c, d = (T.mk_var(n, T.INT) for n in "abcd")
    eab, ecd = T.mk_eq(a, b), T.mk_eq(c, d)
    cc.merge(a, b, reason=eab)
    cc.merge(c, d, reason=ecd)
    ebc = T.mk_eq(b, c)
    cc.merge(b, c, reason=ebc)
    # a = b predates (and is independent of) the c/d component.
    assert cc.explain([(a, b)]) == [eab]
    got = set(map(id, cc.explain([(a, d)])))
    assert got == {id(eab), id(ebc), id(ecd)}


def test_explain_expands_congruence_steps():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    fx, fy = f(x), f(y)
    cc.add(fx)
    cc.add(fy)
    exy = T.mk_eq(x, y)
    cc.merge(x, y, reason=exy)
    # f(x) = f(y) is a congruence consequence of x = y: the explanation
    # must surface the *asserted* equality behind the congruence edge.
    assert cc.explain([(fx, fy)]) == [exy]


def test_explain_nested_congruence():
    cc = CongruenceClosure()
    x, y = T.mk_var("x", T.INT), T.mk_var("y", T.INT)
    ffx, ffy = f(f(x)), f(f(y))
    cc.add(ffx)
    cc.add(ffy)
    exy = T.mk_eq(x, y)
    cc.merge(x, y, reason=exy)
    assert cc.explain([(ffx, ffy)]) == [exy]


def test_explain_survives_path_reversal():
    # Merging long chains exercises _proof_link's path reversal: every
    # asserted reason must survive re-orientation of proof-tree edges.
    cc = CongruenceClosure()
    vs = [T.mk_var(f"v{i}", T.INT) for i in range(8)]
    reasons = []
    # Two independent chains, then a cross merge.
    for i in range(3):
        e = T.mk_eq(vs[i], vs[i + 1])
        reasons.append(e)
        cc.merge(vs[i], vs[i + 1], reason=e)
    for i in range(4, 7):
        e = T.mk_eq(vs[i], vs[i + 1])
        reasons.append(e)
        cc.merge(vs[i], vs[i + 1], reason=e)
    cross = T.mk_eq(vs[0], vs[7])
    reasons.append(cross)
    cc.merge(vs[0], vs[7], reason=cross)
    got = set(map(id, cc.explain([(vs[3], vs[4])])))
    assert got == set(map(id, reasons))


def test_explain_unrelated_terms_raises():
    cc = CongruenceClosure()
    x, y = T.mk_var("px", T.INT), T.mk_var("py", T.INT)
    cc.add(x)
    cc.add(y)
    with pytest.raises(EufConflict):
        cc.explain([(x, y)])
