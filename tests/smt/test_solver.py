"""End-to-end DPLL(T) solver tests across theories."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    ARR,
    INT,
    SAT,
    STR,
    UNKNOWN,
    UNSAT,
    Axiom,
    Solver,
    check_formulas,
    mk_add,
    mk_and,
    mk_app,
    mk_eq,
    mk_int,
    mk_le,
    mk_lt,
    mk_mod,
    mk_not,
    mk_or,
    mk_select,
    mk_store,
    mk_var,
)

x = mk_var("x", INT)
y = mk_var("y", INT)
z = mk_var("z", INT)
A = mk_var("A", ARR)


def test_lia_conflict():
    assert check_formulas([mk_lt(x, y), mk_lt(y, x)])[0] == UNSAT


def test_lia_tight_model():
    status, model = check_formulas([mk_lt(x, y), mk_le(y, mk_add(x, mk_int(1)))])
    assert status == SAT
    assert model.eval_int(y) == model.eval_int(x) + 1


def test_integer_gap_unsat():
    # x < y < x+1 has no integer solution.
    assert check_formulas([mk_lt(x, y), mk_lt(y, mk_add(x, mk_int(1)))])[0] == UNSAT


def test_euf_congruence_conflict():
    fx = mk_app("f", [x], INT)
    fy = mk_app("f", [y], INT)
    assert check_formulas([mk_eq(x, y), mk_not(mk_eq(fx, fy))])[0] == UNSAT


def test_euf_lia_combination():
    # f(x) = 3 and x = y imply f(y) = 3.
    fx = mk_app("f", [x], INT)
    fy = mk_app("f", [y], INT)
    formulas = [mk_eq(fx, mk_int(3)), mk_eq(x, y),
                mk_not(mk_eq(fy, mk_int(3)))]
    assert check_formulas(formulas)[0] == UNSAT


def test_boolean_structure():
    p = mk_or(mk_eq(x, mk_int(1)), mk_eq(x, mk_int(2)))
    q = mk_not(mk_eq(x, mk_int(1)))
    status, model = check_formulas([p, q])
    assert status == SAT
    assert model.eval_int(x) == 2


def test_read_over_write_hit_and_miss():
    t = mk_select(mk_store(A, x, mk_int(5)), x)
    assert check_formulas([mk_not(mk_eq(t, mk_int(5)))])[0] == UNSAT
    t2 = mk_select(mk_store(A, x, mk_int(5)), y)
    status, model = check_formulas([mk_not(mk_eq(t2, mk_select(A, y)))])
    assert status == SAT
    assert model.eval_int(x) == model.eval_int(y)


def test_ssa_array_definition_inlining():
    a0 = mk_var("A#0", ARR)
    a1 = mk_var("A#1", ARR)
    k = mk_var("k", INT)
    formulas = [
        mk_eq(a1, mk_store(a0, mk_int(0), mk_int(7))),
        mk_eq(k, mk_int(0)),
        mk_not(mk_eq(mk_select(a1, k), mk_int(7))),
    ]
    assert check_formulas(formulas)[0] == UNSAT


def test_deep_store_chain():
    a0 = mk_var("B#0", ARR)
    chain = a0
    for i in range(4):
        chain = mk_store(chain, mk_int(i), mk_int(i * 10))
    goal = mk_not(mk_eq(mk_select(chain, mk_int(2)), mk_int(20)))
    assert check_formulas([goal])[0] == UNSAT


def test_divmod_linearization():
    a = mk_var("a", INT)
    formulas = [mk_eq(a, mk_int(13)),
                mk_not(mk_eq(mk_mod(a, mk_int(4)), mk_int(1)))]
    assert check_formulas(formulas)[0] == UNSAT


def test_divmod_symbolic_reconstruction():
    # a = 4*(a/4) + a%4 holds for all a.
    from repro.smt import mk_div, mk_mul_const

    a = mk_var("a", INT)
    recon = mk_add(mk_mul_const(4, mk_div(a, mk_int(4))), mk_mod(a, mk_int(4)))
    assert check_formulas([mk_not(mk_eq(a, recon))])[0] == UNSAT


def test_axiom_instantiation():
    s = mk_var("?s", STR)
    c = mk_var("?c", STR)
    ap = mk_app("append", [s, c], STR)
    strlen = lambda t: mk_app("strlen", [t], INT)
    ax = Axiom("strlen_append", (s, c),
               mk_eq(strlen(ap), mk_add(strlen(s), mk_int(1))), (ap,))
    sv = mk_var("sv", STR)
    cv = mk_var("cv", STR)
    g = mk_app("append", [sv, cv], STR)
    formulas = [mk_eq(strlen(sv), mk_int(3)),
                mk_not(mk_eq(strlen(g), mk_int(4)))]
    assert check_formulas(formulas, axioms=[ax])[0] == UNSAT


def test_model_verification_rejects_wrong_models():
    # SAT answers always come with verified models.
    status, model = check_formulas([
        mk_eq(mk_select(A, x), mk_int(4)),
        mk_eq(mk_select(A, y), mk_int(9)),
    ])
    assert status == SAT
    assert model.eval_int(mk_select(A, x)) == 4
    assert model.eval_int(mk_select(A, y)) == 9
    assert model.eval_int(x) != model.eval_int(y)


def test_unknown_reason_populated_on_giveup():
    solver = Solver(max_theory_rounds=1, sat_conflict_budget=1)
    solver.add(mk_or(*[mk_eq(mk_var(f"v{i}", INT), mk_int(i)) for i in range(6)]))
    solver.add(mk_not(mk_eq(mk_var("v0", INT), mk_int(0))))
    status = solver.check()
    if status == UNKNOWN:
        assert solver.unknown_reason


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_fuzz_difference_logic_vs_reference(data):
    """Random difference-logic conjunctions: compare against Bellman-Ford."""
    num_vars = data.draw(st.integers(2, 4))
    variables = [mk_var(f"d{i}", INT) for i in range(num_vars)]
    edges = []
    formulas = []
    for _ in range(data.draw(st.integers(1, 6))):
        a = data.draw(st.integers(0, num_vars - 1))
        b = data.draw(st.integers(0, num_vars - 1))
        w = data.draw(st.integers(-4, 4))
        # x_a - x_b <= w
        formulas.append(mk_le(mk_add(variables[a],
                                     mk_int(0)) if a == b else variables[a],
                              mk_add(variables[b], mk_int(w))))
        edges.append((b, a, w))
    # Reference: negative cycle detection.
    dist = [0] * num_vars
    for _ in range(num_vars + 1):
        changed = False
        for b, a, w in edges:
            if dist[b] + w < dist[a]:
                dist[a] = dist[b] + w
                changed = True
    expected_sat = not changed
    status, model = check_formulas(formulas)
    if expected_sat:
        assert status == SAT
    else:
        assert status == UNSAT
