"""Term construction and normalization tests."""

from repro.smt import terms as T


def test_hash_consing_identity():
    a = T.mk_add(T.mk_var("x", T.INT), T.mk_int(1))
    b = T.mk_add(T.mk_var("x", T.INT), T.mk_int(1))
    assert a is b


def test_add_constant_folding_and_merging():
    x = T.mk_var("x", T.INT)
    e = T.mk_add(x, T.mk_int(2), x, T.mk_int(-2))
    assert e == T.mk_mul_const(2, x)
    assert T.mk_add(T.mk_int(3), T.mk_int(4)) == T.mk_int(7)


def test_add_cancellation_to_zero():
    x = T.mk_var("x", T.INT)
    assert T.mk_sub(x, x) == T.mk_int(0)


def test_mul_const_normalization():
    x = T.mk_var("x", T.INT)
    assert T.mk_mul_const(1, x) is x
    assert T.mk_mul_const(0, x) == T.mk_int(0)
    assert T.mk_mul_const(2, T.mk_mul_const(3, x)) == T.mk_mul_const(6, x)


def test_mul_folds_constants_each_side():
    x = T.mk_var("x", T.INT)
    assert T.mk_mul(T.mk_int(3), x) == T.mk_mul_const(3, x)
    assert T.mk_mul(x, T.mk_int(3)) == T.mk_mul_const(3, x)
    y = T.mk_var("y", T.INT)
    assert T.mk_mul(x, y) is T.mk_mul(y, x)  # commutative normalization


def test_div_mod_constant_folding():
    assert T.mk_div(T.mk_int(7), T.mk_int(2)) == T.mk_int(3)
    assert T.mk_mod(T.mk_int(7), T.mk_int(2)) == T.mk_int(1)
    assert T.mk_div(T.mk_int(-7), T.mk_int(2)) == T.mk_int(-4)  # floor


def test_eq_le_trivial_cases():
    x = T.mk_var("x", T.INT)
    assert T.mk_eq(x, x) is T.TRUE
    assert T.mk_eq(T.mk_int(1), T.mk_int(2)) is T.FALSE
    assert T.mk_le(T.mk_int(1), T.mk_int(2)) is T.TRUE
    assert T.mk_le(x, x) is T.TRUE


def test_bool_connective_normalization():
    x = T.mk_var("b", T.BOOL)
    assert T.mk_not(T.mk_not(x)) is x
    assert T.mk_and() is T.TRUE
    assert T.mk_or() is T.FALSE
    assert T.mk_and(x, T.TRUE) is x
    assert T.mk_or(x, T.FALSE) is x
    assert T.mk_and(x, T.FALSE) is T.FALSE


def test_array_sorts_and_select_typing():
    a = T.mk_var("A", T.ARR)
    i = T.mk_var("i", T.INT)
    s = T.mk_select(a, i)
    assert s.sort is T.INT
    sa = T.mk_var("D", T.SARR)
    assert T.mk_select(sa, i).sort is T.STR


def test_substitute():
    x = T.mk_var("x", T.INT)
    y = T.mk_var("y", T.INT)
    e = T.mk_add(x, T.mk_mul_const(3, x))
    out = T.substitute(e, {x: y})
    assert out == T.mk_add(y, T.mk_mul_const(3, y))


def test_subterms_and_vars():
    x = T.mk_var("x", T.INT)
    e = T.mk_add(x, T.mk_int(1))
    subs = set(T.subterms(e))
    assert x in subs and e in subs
    assert T.term_vars(e) == frozenset({x})
