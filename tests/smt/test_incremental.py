"""Incremental-context tests: warm answers must match fresh solves.

The contexts in :mod:`repro.smt.incremental` answer base+delta queries
from warm SAT/theory state.  Every test here pins a piece of the
soundness argument: scope isolation, lemma retention, the live-literal
set, and agreement with a cold :class:`~repro.smt.solver.Solver` on the
same assertions.
"""

from repro.smt import terms as T
from repro.smt.incremental import ContextPool, IncrementalContext
from repro.smt.solver import SAT, UNSAT, Solver

X = T.mk_var("x", T.INT)
Y = T.mk_var("y", T.INT)
Z = T.mk_var("z", T.INT)


def eq(a, b):
    return T.mk_eq(a, b)


def fresh_status(assertions):
    s = Solver()
    for f in assertions:
        s.add(f)
    return s.check()


def test_delta_sat_and_unsat():
    base = (eq(X, T.mk_int(3)), T.mk_le(Y, T.mk_int(10)))
    ctx = IncrementalContext(base)
    sat_q = list(base) + [eq(Y, T.mk_int(7))]
    unsat_q = list(base) + [eq(X, T.mk_int(5))]
    assert ctx.check_delta(sat_q) == SAT == fresh_status(sat_q)
    assert ctx.check_delta(unsat_q) == UNSAT == fresh_status(unsat_q)


def test_scopes_do_not_leak():
    base = (T.mk_le(T.mk_int(0), X),)
    ctx = IncrementalContext(base)
    assert ctx.check_delta(list(base) + [eq(X, T.mk_int(1))]) == SAT
    # The retired scope's x=1 must not constrain this query.
    assert ctx.check_delta(list(base) + [eq(X, T.mk_int(2))]) == SAT
    assert ctx.check_delta(
        list(base) + [eq(X, T.mk_int(1)), eq(X, T.mk_int(2))]) == UNSAT


def test_repeated_delta_atom_stays_live():
    # Regression: an atom first registered by a retired scope must be
    # re-classified live when a later delta reuses it.  With the
    # registration-order bookkeeping this answered SAT (the atom's junk
    # value never reached the theory check) where a fresh solve says
    # UNSAT.
    base = (eq(X, T.mk_int(3)),)
    ctx = IncrementalContext(base)
    bad = list(base) + [eq(X, T.mk_int(5))]
    assert ctx.check_delta(bad) == UNSAT
    assert ctx.check_delta(bad) == UNSAT  # same delta, second scope
    good = list(base) + [eq(Y, T.mk_int(5))]
    assert ctx.check_delta(good) == SAT
    assert ctx.check_delta(bad) == UNSAT  # and again after a SAT scope


def test_non_superset_query_falls_back():
    base = (eq(X, T.mk_int(3)),)
    ctx = IncrementalContext(base)
    assert ctx.check_delta([eq(Y, T.mk_int(1))]) is None


def test_many_scopes_with_rebuild():
    # Push enough scopes to cross REBUILD_AFTER and verify answers stay
    # correct through the rebuild.
    import repro.smt.incremental as inc_mod

    base = (T.mk_le(T.mk_int(0), X),)
    ctx = IncrementalContext(base)
    old = inc_mod.REBUILD_AFTER
    inc_mod.REBUILD_AFTER = 10
    try:
        for i in range(25):
            q = list(base) + [eq(X, T.mk_int(i))]
            assert ctx.check_delta(q) == SAT
            bad = list(base) + [eq(X, T.mk_int(i)), eq(X, T.mk_int(i + 1))]
            assert ctx.check_delta(bad) == UNSAT
    finally:
        inc_mod.REBUILD_AFTER = old


def test_agreement_with_fresh_solver_on_mixed_family():
    sel = T.mk_select(T.mk_var("A", T.ARR), X)
    base = (T.mk_le(T.mk_int(0), X), eq(sel, Y))
    ctx = IncrementalContext(base)
    deltas = [
        [eq(Y, T.mk_int(4))],
        [eq(Y, T.mk_int(4)), T.mk_le(Y, T.mk_int(3))],
        [T.mk_le(T.mk_add(X, Y), T.mk_int(9))],
        [eq(sel, T.mk_int(2)), eq(Y, T.mk_int(2))],
        [eq(sel, T.mk_int(2)), eq(Y, T.mk_int(3))],
    ]
    for delta in deltas:
        q = list(base) + delta
        warm = ctx.check_delta(q)
        if warm is not None:
            assert warm == fresh_status(q), delta


def test_pool_reuses_context_and_gates_models():
    pool = ContextPool(capacity=4)
    base = (eq(X, T.mk_int(3)),)

    def mk_solver(extra):
        s = Solver()
        for f in base:
            s.add(f)
        s.add(extra)
        return s

    unsat_solver = mk_solver(eq(X, T.mk_int(5)))
    assert pool.try_status(unsat_solver, base, want_model=True) == UNSAT
    sat_solver = mk_solver(eq(Y, T.mk_int(5)))
    # SAT with a model wanted must fall through to the one-shot path.
    assert pool.try_status(sat_solver, base, want_model=True) is None
    sat_solver2 = mk_solver(eq(Y, T.mk_int(6)))
    assert pool.try_status(sat_solver2, base, want_model=False) == SAT
    key_count = len(pool._contexts)
    assert key_count == 1  # one family, one warm context


def test_model_rerun_backoff_skips_sat_heavy_family():
    # A family whose warm answers are all discarded model-wanting SATs
    # must stop being attempted after MODEL_RERUN_BACKOFF discards —
    # and a landed answer must reset the streak.
    from repro.smt.incremental import MODEL_RERUN_BACKOFF

    pool = ContextPool(capacity=4)
    base = (T.mk_le(T.mk_int(0), X),)

    def mk_solver(extra):
        s = Solver()
        for f in base:
            s.add(f)
        s.add(extra)
        return s

    for i in range(MODEL_RERUN_BACKOFF):
        s = mk_solver(eq(Y, T.mk_int(i)))
        assert pool.try_status(s, base, want_model=True) is None
    ctx = next(iter(pool._contexts.values()))
    assert ctx._model_reruns == MODEL_RERUN_BACKOFF
    scopes_before = ctx._retired_scopes
    # Backed off: no new scope is even pushed for a model-wanting query.
    s = mk_solver(eq(Y, T.mk_int(99)))
    assert pool.try_status(s, base, want_model=True) is None
    assert ctx._retired_scopes == scopes_before
    # Status-only probes still run warm, and a landed answer resets.
    s = mk_solver(eq(Y, T.mk_int(100)))
    assert pool.try_status(s, base, want_model=False) == SAT
    assert ctx._model_reruns == 0
    s = mk_solver(eq(Y, T.mk_int(101)))
    assert pool.try_status(s, base, want_model=True) is None
    assert ctx._model_reruns == 1
