"""CDCL SAT solver tests: units, conflicts, incrementality, fuzzing."""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt.sat import SatSolver, _luby, solve_cnf


def brute_force(clauses, n):
    for bits in itertools.product([False, True], repeat=n):
        if all(any((l > 0) == bits[abs(l) - 1] for l in c) for c in clauses):
            return True
    return False


def test_luby_sequence():
    assert [_luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def test_empty_formula_sat():
    s = SatSolver()
    assert s.solve() is True


def test_unit_propagation_chain():
    m = solve_cnf([[1], [-1, 2], [-2, 3]])
    assert m == {1: True, 2: True, 3: True}


def test_simple_unsat():
    assert solve_cnf([[1], [-1]]) is None
    assert solve_cnf([[1, 2], [-1, 2], [1, -2], [-1, -2]]) is None


def test_tautological_clause_ignored():
    m = solve_cnf([[1, -1], [2]])
    assert m is not None and m[2]


def test_duplicate_literals_deduped():
    m = solve_cnf([[1, 1, 1]])
    assert m is not None and m[1]


def test_model_satisfies_all_clauses():
    clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
    m = solve_cnf(clauses)
    assert m is not None
    assert all(any((l > 0) == m[abs(l)] for l in c) for c in clauses)


def test_incremental_clause_addition():
    s = SatSolver()
    assert s.add_clause([1, 2])
    assert s.solve() is True
    assert s.add_clause([-1])
    assert s.solve() is True
    assert s.model()[2] is True
    # Adding the final clause makes the formula UNSAT; add_clause may
    # already report that (False) and solve must agree.
    s.add_clause([-2])
    assert s.solve() is False


def test_add_clause_after_unsat_stays_unsat():
    s = SatSolver()
    s.add_clause([1])
    s.add_clause([-1])
    assert s.solve() is False
    assert s.solve() is False


def test_conflict_budget_returns_none_or_answer():
    # A small pigeonhole-ish instance; with a tiny budget the solver may
    # give up (None) but must never give a wrong answer.
    clauses = []
    holes, pigeons = 3, 4
    def var(p, h):
        return p * holes + h + 1
    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    s = SatSolver()
    for c in clauses:
        s.add_clause(c)
    result = s.solve(max_conflicts=5)
    assert result in (False, None)
    s2 = SatSolver()
    for c in clauses:
        s2.add_clause(c)
    assert s2.solve() is False


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_fuzz_against_brute_force(data):
    n = data.draw(st.integers(2, 6))
    m = data.draw(st.integers(1, 18))
    clauses = []
    for _ in range(m):
        size = data.draw(st.integers(1, 3))
        clause = [data.draw(st.integers(1, n)) * data.draw(st.sampled_from([1, -1]))
                  for _ in range(size)]
        clauses.append(clause)
    model = solve_cnf(clauses)
    expected = brute_force(clauses, n)
    assert (model is not None) == expected
    if model is not None:
        assert all(any((l > 0) == model[abs(l)] for l in c) for c in clauses)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_fuzz_incremental_equals_oneshot(data):
    n = data.draw(st.integers(2, 5))
    m = data.draw(st.integers(2, 14))
    clauses = []
    for _ in range(m):
        size = data.draw(st.integers(1, 3))
        clauses.append([data.draw(st.integers(1, n)) *
                        data.draw(st.sampled_from([1, -1])) for _ in range(size)])
    s = SatSolver()
    half = m // 2
    for c in clauses[:half]:
        s.add_clause(c)
    s.solve()
    for c in clauses[half:]:
        s.add_clause(c)
    assert (s.solve() is True) == brute_force(clauses, n)


# -- assumption-based solving (incremental contexts) --------------------------


def test_assumptions_basic():
    s = SatSolver()
    a = s.new_var()
    x = s.new_var()
    s.add_clause([-a, x])  # a -> x
    assert s.solve(assumptions=(a,)) is True
    assert s.model()[x] is True
    # Same DB, opposite assumption: x unconstrained.
    assert s.solve(assumptions=(-a,)) is True


def test_unsat_under_assumptions_keeps_solver_reusable():
    s = SatSolver()
    a = s.new_var()
    x = s.new_var()
    s.add_clause([-a, x])
    s.add_clause([-a, -x])  # a -> (x and not x)
    assert s.solve(assumptions=(a,)) is False
    # The contradiction lives behind `a`: the solver must stay usable
    # and the unguarded DB satisfiable.
    assert s._ok
    assert s.solve(assumptions=(-a,)) is True
    assert s.solve() is True


def test_scope_retirement_via_unit():
    s = SatSolver()
    a1, x = s.new_var(), s.new_var()
    s.add_clause([-a1, x])
    assert s.solve(assumptions=(a1,)) is True
    # Retire the scope: its clauses become inert, later solves are free
    # to falsify x.
    s.add_clause([-a1])
    a2 = s.new_var()
    s.add_clause([-a2, -x])
    assert s.solve(assumptions=(a2,)) is True
    assert s.model()[x] is False


def test_learned_clauses_persist_across_assumption_solves():
    # Conflicts under one assumption must not poison later solves: run
    # a pigeonhole-style unsat scope, then solve a satisfiable scope.
    s = SatSolver()
    a = s.new_var()
    p = [s.new_var() for _ in range(6)]
    # 3 pigeons, 2 holes, all guarded on `a`.
    for i in range(3):
        s.add_clause([-a, p[2 * i], p[2 * i + 1]])
    for hole in range(2):
        for i in range(3):
            for j in range(i + 1, 3):
                s.add_clause([-a, -p[2 * i + hole], -p[2 * j + hole]])
    assert s.solve(assumptions=(a,)) is False
    assert s._ok
    b = s.new_var()
    s.add_clause([-b, p[0]])
    assert s.solve(assumptions=(b,)) is True
    assert s.model()[p[0]] is True


def test_conflicting_assumptions():
    s = SatSolver()
    x = s.new_var()
    s.add_clause([x])
    assert s.solve(assumptions=(-x,)) is False
    assert s._ok
    assert s.solve() is True
