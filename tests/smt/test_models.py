"""Model construction / evaluation / verification tests."""

import pytest

from repro.smt import terms as T
from repro.smt.models import Model, ModelInconsistency, build_model, verify_literals


def test_eval_int_linear():
    x = T.mk_var("x", T.INT)
    m = Model(int_values={x: 4})
    assert m.eval_int(T.mk_add(T.mk_mul_const(3, x), T.mk_int(2))) == 14


def test_eval_array_store_semantics():
    a = T.mk_var("A", T.ARR)
    m = Model(arrays={a: {0: 7}})
    stored = T.mk_store(a, T.mk_int(1), T.mk_int(9))
    assert m.eval_int(T.mk_select(stored, T.mk_int(1))) == 9
    assert m.eval_int(T.mk_select(stored, T.mk_int(0))) == 7
    assert m.eval_int(T.mk_select(stored, T.mk_int(5))) == 0


def test_app_table_consistency():
    x = T.mk_var("x", T.INT)
    f1 = T.mk_app("f", [x], T.INT)
    m = Model(int_values={x: 1, f1: 42})
    assert m.eval_int(f1) == 42
    # A different application with the same argument value shares the table.
    y = T.mk_var("y", T.INT)
    f2 = T.mk_app("f", [y], T.INT)
    m.int_values[y] = 1
    m.app_table[("f", 1)] = 42
    assert m.eval_int(f2) == 42


def test_eval_atom():
    x = T.mk_var("x", T.INT)
    m = Model(int_values={x: 3})
    assert m.eval_atom(T.mk_le(x, T.mk_int(3)))
    assert not m.eval_atom(T.mk_le(T.mk_int(4), x))
    assert m.eval_atom(T.mk_eq(x, T.mk_int(3)))


def test_build_model_reconstructs_arrays():
    a = T.mk_var("A#0", T.ARR)
    i = T.mk_var("i", T.INT)
    sel_i = T.mk_select(a, i)
    universe = [a, i, sel_i]
    model = build_model(universe, {i: 2, sel_i: 9}, {})
    assert model.arrays[a][2] == 9


def test_build_model_detects_inconsistency():
    a = T.mk_var("A#0", T.ARR)
    i = T.mk_var("i", T.INT)
    j = T.mk_var("j", T.INT)
    s_i = T.mk_select(a, i)
    s_j = T.mk_select(a, j)
    universe = [a, i, j, s_i, s_j]
    with pytest.raises(ModelInconsistency):
        build_model(universe, {i: 1, j: 1, s_i: 5, s_j: 6}, {})


def test_verify_literals_flags_violations():
    x = T.mk_var("x", T.INT)
    m = Model(int_values={x: 3})
    atom = T.mk_le(x, T.mk_int(2))
    assert verify_literals(m, [(atom, False)]) is None
    assert verify_literals(m, [(atom, True)]) == (atom, True)
