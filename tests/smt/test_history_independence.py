"""Process-history independence of term construction and synthesis.

Terms are hash-consed with a process-global id counter, so anything
ordered by ``Term.id`` depends on what was built earlier in the process.
The commutative constructors (``mk_add``/``mk_mul``/``mk_eq``) and EUF
model class values therefore order/number by structural keys instead —
otherwise running benchmark A before benchmark B changes B's inverse
digest relative to running B alone (the bug that made golden digests and
the cross-label bench matrix gates unusable).  ``Term.__hash__`` is
likewise structural (not the address-based default), so iterated term
sets — e.g. the solver's trichotomy pass — cannot order by allocation
history.
"""

import subprocess
import sys
from pathlib import Path

from repro.smt.terms import INT, mk_add, mk_eq, mk_mul, mk_var

SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_commutative_orientation_is_structural():
    # Construction order must not influence operand order: build the
    # operands fresh in both orders and the composed terms must agree.
    a, b = mk_var("hist_a", INT), mk_var("hist_b", INT)
    assert mk_eq(a, b) is mk_eq(b, a)
    assert mk_mul(a, b) is mk_mul(b, a)
    assert mk_add(a, b) is mk_add(b, a)
    # The orientation follows the structural key, not the cons id.
    composed = mk_add(a, b)
    assert list(composed.args) == sorted(composed.args, key=lambda t: t.skey)


def test_skey_is_deterministic_across_processes():
    prog = ("from repro.smt.terms import INT, mk_add, mk_var;"
            "t = mk_add(mk_var('x', INT), mk_var('y', INT));"
            "print(t.skey.hex(), hash(t))")
    outs = {
        subprocess.run([sys.executable, "-c", prog], check=True,
                       capture_output=True, text=True,
                       env={"PYTHONPATH": SRC, "PYTHONHASHSEED": str(seed)},
                       ).stdout.strip()
        for seed in (0, 1)
    }
    assert len(outs) == 1


def test_term_hash_is_structural_not_address():
    # A Set[Term] iterated anywhere in the solver must not order by
    # allocation addresses (the default object hash): that made clause
    # order — and whole synthesis trajectories — flip with the process's
    # allocation history (e.g. merely enabling REPRO_TRACE changed
    # pkt_wrapper's stabilized inverse).
    t = mk_add(mk_var("hash_a", INT), mk_var("hash_b", INT))
    # hash() folds the returned int through the int hash (mod 2**61 - 1).
    assert hash(t) == hash(int.from_bytes(t.skey[:8], "big"))
    assert hash(t) != object.__hash__(t)


def test_inverse_digest_independent_of_prior_runs():
    """Same task + config => same digest, with or without a prefix run."""
    prog = """
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark
cfg = PinsConfig(m=3, max_iterations=4, seed=1, budget="smt=60")
import sys
for name in sys.argv[1:]:
    run_pins(get_benchmark(name).task, cfg)
r = run_pins(get_benchmark("sumi").task, cfg)
print(r.status, r.inverse_digest())
"""
    def run(*prefix):
        out = subprocess.run(
            [sys.executable, "-c", prog, *prefix], check=True,
            capture_output=True, text=True, env={"PYTHONPATH": SRC})
        return out.stdout.strip()

    assert run() == run("delta_encode")
