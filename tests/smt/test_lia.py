"""Simplex + branch-and-bound tests."""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt.lia import SAT, UNKNOWN, UNSAT, LiaSolver


def make(constraints, num_vars):
    lia = LiaSolver()
    for _ in range(num_vars):
        lia.new_var()
    for idx, (coeffs, op, const) in enumerate(constraints):
        lia.add(coeffs, op, const, tag=idx)
    return lia


def test_feasible_system_gives_model():
    # x >= 1, y >= 2, x + y <= 5
    lia = make([({0: 1}, ">=", 1), ({1: 1}, ">=", 2), ({0: 1, 1: 1}, "<=", 5)], 2)
    status, core, model = lia.check()
    assert status == SAT
    assert model[0] >= 1 and model[1] >= 2 and model[0] + model[1] <= 5


def test_infeasible_system_core():
    lia = make([({0: 1}, ">=", 3), ({0: 1}, "<=", 1)], 1)
    status, core, model = lia.check()
    assert status == UNSAT
    assert set(core) <= {0, 1}


def test_equality_constraints():
    # x = 3, x + y = 5  ->  y = 2
    lia = make([({0: 1}, "=", 3), ({0: 1, 1: 1}, "=", 5)], 2)
    status, _, model = lia.check()
    assert status == SAT
    assert model[0] == 3 and model[1] == 2


def test_integrality_branching():
    # 2x = 3 has no integer solution.
    lia = make([({0: 2}, "=", 3)], 1)
    status, _, _ = lia.check()
    assert status == UNSAT


def test_integrality_feasible_after_branching():
    # 2 <= 3x <= 4  ->  x = 1 (rational relaxation is [2/3, 4/3])
    lia = make([({0: 3}, ">=", 2), ({0: 3}, "<=", 4)], 1)
    status, _, model = lia.check()
    assert status == SAT and model[0] == 1


def test_trivial_contradiction_without_vars():
    lia = make([({}, ">=", 1)], 0)
    status, core, _ = lia.check()
    assert status == UNSAT and core == [0]


def test_shared_linear_form_reuses_slack():
    lia = LiaSolver()
    x = lia.new_var()
    y = lia.new_var()
    lia.add({x: 1, y: 1}, "<=", 5, "a")
    lia.add({x: 1, y: 1}, ">=", 5, "b")
    status, _, model = lia.check()
    assert status == SAT
    assert model[x] + model[y] == 5


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_fuzz_models_satisfy_constraints(data):
    num_vars = data.draw(st.integers(1, 4))
    num_cons = data.draw(st.integers(1, 7))
    constraints = []
    for _ in range(num_cons):
        coeffs = {v: data.draw(st.integers(-3, 3)) for v in range(num_vars)}
        op = data.draw(st.sampled_from(["<=", ">=", "="]))
        const = data.draw(st.integers(-10, 10))
        constraints.append((coeffs, op, const))
    lia = make(constraints, num_vars)
    status, core, model = lia.check()
    if status == SAT:
        for coeffs, op, const in constraints:
            value = sum(c * model[v] for v, c in coeffs.items())
            if op == "<=":
                assert value <= const
            elif op == ">=":
                assert value >= const
            else:
                assert value == const
    elif status == UNSAT:
        assert core
