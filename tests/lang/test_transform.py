"""Desugaring, substitution, renaming, and composition tests."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program, parse_stmt
from repro.lang.transform import (
    compose,
    desugar,
    desugar_program,
    loc_of,
    rename_expr,
    rename_pred,
    rename_stmt,
    substitute_expr,
    substitute_pred,
    substitute_stmt,
    version_expr,
    version_pred,
    versioned_name,
    unversioned_name,
)


def test_desugar_gwhile_shape():
    s = parse_stmt("while (x < 3) { x := x + 1; }")
    d = desugar(s)
    assert isinstance(d, ast.Seq)
    loop, trailing = d.stmts
    assert isinstance(loop, ast.While) and loop.loop_id
    body = loop.body
    assert isinstance(body, ast.Seq)
    assert isinstance(body.stmts[0], ast.Assume)
    assert isinstance(trailing, ast.Assume)
    assert trailing.pred == ast.ge(ast.v("x"), ast.n(3))


def test_desugar_gif_shape():
    s = parse_stmt("if (x = 0) { y := 1; } else { y := 2; }")
    d = desugar(s)
    assert isinstance(d, ast.If)
    assert isinstance(d.then, ast.Seq)
    assert isinstance(d.then.stmts[0], ast.Assume)
    assert d.els.stmts[0].pred == ast.ne(ast.v("x"), ast.n(0))


def test_desugar_assigns_unique_loop_ids():
    s = parse_stmt("while (a < 1) { while (b < 2) { b := b + 1; } a := a + 1; }")
    d = desugar(s)
    ids = [w.loop_id for w in ast.walk_stmts(d) if isinstance(w, ast.While)]
    assert len(ids) == 2 and len(set(ids)) == 2


def test_desugar_program_appends_exit():
    p = parse_program("program t [int x] { x := 1; }")
    d = desugar_program(p)
    assert any(isinstance(s, ast.Exit) for s in ast.walk_stmts(d.body))


def test_rename_expr_and_pred():
    e = parse_expr("sel(A, i) + j")
    assert rename_expr(e, {"i": "ip", "A": "Ap"}) == parse_expr("sel(Ap, ip) + j")
    p = parse_pred("i < n")
    assert rename_pred(p, {"i": "ip"}) == parse_pred("ip < n")


def test_rename_stmt_renames_targets_and_io():
    s = parse_stmt("in(A); x := sel(A, 0); out(x);")
    r = rename_stmt(s, {"x": "xp", "A": "Ap"})
    text = str(r)
    assert "xp" in str(r) or True  # structural checks below
    assigns = [q for q in ast.walk_stmts(r) if isinstance(q, ast.Assign)]
    assert assigns[0].targets == ("xp",)
    ins = [q for q in ast.walk_stmts(r) if isinstance(q, ast.In)]
    assert ins[0].names == ("Ap",)


def test_substitute_expr_fills_unknowns():
    e = parse_expr("[e1] + 1")
    out = substitute_expr(e, {"e1": parse_expr("x * 2")})
    assert out == parse_expr("(x * 2) + 1")


def test_substitute_expr_partial_map_keeps_hole():
    e = parse_expr("[e1] + [e2]")
    out = substitute_expr(e, {"e1": ast.n(5)})
    assert ast.expr_unknowns(out) == frozenset({"e2"})


def test_substitute_pred_subset_conjunction():
    p = ast.UnknownPred("p1")
    out = substitute_pred(p, {}, {"p1": (parse_pred("x < 1"), parse_pred("y > 2"))})
    assert isinstance(out, ast.And)
    empty = substitute_pred(p, {}, {"p1": ()})
    assert empty == ast.TRUE


def test_version_expr_pairs_hole_with_vmap():
    e = parse_expr("[e1] + x")
    v = version_expr(e, {"x": 3, "y": 1})
    holes = [n for n in ast.walk_exprs(v) if isinstance(n, ast.HoleExpr)]
    assert holes[0].vmap == (("x", 3), ("y", 1))
    vars_ = ast.expr_vars(v)
    assert "x#3" in vars_


def test_version_pred_unknown():
    p = version_pred(ast.UnknownPred("g"), {"x": 2})
    assert isinstance(p, ast.HolePred)
    assert p.vmap == (("x", 2),)


def test_versioned_name_roundtrip():
    assert versioned_name("x", 4) == "x#4"
    assert unversioned_name("x#4") == "x"
    assert unversioned_name("plain") == "plain"


def test_compose_merges_decls_and_checks_conflicts():
    p = parse_program("program p [int x] { in(x); out(x); }")
    q = parse_program("program q [int x; int y] { y := x; out(y); }")
    c = compose(p, q)
    assert set(c.decls) == {"x", "y"}
    bad = parse_program("program r [array x] { x := upd(x, 0, 1); }")
    with pytest.raises(ValueError):
        compose(p, bad)


def test_rename_under_update_renames_every_occurrence():
    e = parse_expr("upd(A, i, sel(A, j))")
    assert rename_expr(e, {"A": "Ap", "i": "ip"}) == parse_expr("upd(Ap, ip, sel(Ap, j))")


def test_rename_swap_is_simultaneous():
    # {i -> j, j -> i} must not cascade: the renamed j is not renamed again.
    e = parse_expr("upd(A, i, sel(A, j))")
    assert rename_expr(e, {"i": "j", "j": "i"}) == parse_expr("upd(A, j, sel(A, i))")


def test_substitute_under_update_fills_all_occurrences():
    e = parse_expr("upd(A, [e1], [e1] + 1)")
    out = substitute_expr(e, {"e1": parse_expr("i * 2")})
    assert out == parse_expr("upd(A, i * 2, (i * 2) + 1)")
    assert ast.expr_unknowns(out) == frozenset()


def test_substituted_candidate_may_mention_target_vars():
    # A candidate mentioning the updated array itself is inserted as-is;
    # substitution has no binders, so nothing is renamed or captured.
    e = parse_expr("upd(A, i, [e1])")
    out = substitute_expr(e, {"e1": parse_expr("sel(A, i)")})
    assert out == parse_expr("upd(A, i, sel(A, i))")


def test_versioned_name_edge_cases():
    assert versioned_name("x", 0) == "x#0"
    assert unversioned_name("x#0") == "x"
    # Re-versioning a versioned name still strips to the original base.
    assert unversioned_name(versioned_name("x#4", 7)) == "x"
    assert unversioned_name(unversioned_name("x#4#7")) == "x"


def test_compose_merges_same_sort_shared_vars():
    p = parse_program("program p [int x; array A] { in(A); x := sel(A, 0); out(x); }")
    q = parse_program("program q [int x; array A] { in(x); A := upd(A, 0, x); out(A); }")
    c = compose(p, q, name="both")
    assert c.name == "both"
    assert c.decls == {"x": ast.Sort.INT, "A": ast.Sort.ARRAY}
    # Program body precedes template body, and an Exit is appended.
    assigns = [s for s in ast.walk_stmts(c.body) if isinstance(s, ast.Assign)]
    assert assigns[0].targets == ("x",) and assigns[1].targets == ("A",)
    assert any(isinstance(s, ast.Exit) for s in ast.walk_stmts(c.body))


def test_compose_keeps_existing_exit():
    p = parse_program("program p [int x] { x := 1; }")
    q = parse_program("program q [int x] { x := 2; exit; }")
    c = compose(p, q)
    exits = [s for s in ast.walk_stmts(c.body) if isinstance(s, ast.Exit)]
    assert len(exits) == 1


def test_loc_counts_like_the_paper():
    s = parse_stmt("""
      x, y := 1, 2;
      while (x < 3) {
        x := x + 1;
      }
    """)
    # parallel assign = 2, guard = 1, body assign = 1
    assert loc_of(s) == 4
