"""Unit tests for the AST module."""

import pytest

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Cmp,
    CmpOp,
    IntLit,
    Program,
    Sort,
    Var,
    conj,
    negate,
)


def test_expr_equality_is_structural():
    assert ast.add(ast.v("x"), ast.n(1)) == ast.add(ast.v("x"), ast.n(1))
    assert ast.add(ast.v("x"), ast.n(1)) != ast.add(ast.v("x"), ast.n(2))


def test_exprs_are_hashable():
    seen = {ast.sel(ast.v("A"), ast.v("i")), ast.sel(ast.v("A"), ast.v("i"))}
    assert len(seen) == 1


def test_parallel_assignment_arity_checked():
    with pytest.raises(ValueError):
        Assign(("x", "y"), (IntLit(1),))


def test_seq_flattens_and_drops_skip():
    s = ast.seq(ast.SKIP, ast.assign("x", ast.n(1)),
                ast.seq(ast.assign("y", ast.n(2)), ast.SKIP))
    assert isinstance(s, ast.Seq)
    assert len(s.stmts) == 2


def test_seq_of_nothing_is_skip():
    assert ast.seq() == ast.SKIP
    assert ast.seq(ast.SKIP) == ast.SKIP


def test_conj_drops_true_and_flattens():
    p = conj([ast.TRUE, ast.lt(ast.v("x"), ast.n(3)),
              ast.And((ast.gt(ast.v("y"), ast.n(0)),))])
    assert isinstance(p, ast.And)
    assert len(p.parts) == 2
    assert conj([]) == ast.TRUE
    only = ast.lt(ast.v("x"), ast.n(3))
    assert conj([only]) == only


def test_negate_flips_comparisons():
    assert negate(ast.lt(ast.v("x"), ast.n(1))) == ast.ge(ast.v("x"), ast.n(1))
    assert negate(ast.eq(ast.v("x"), ast.n(1))) == ast.ne(ast.v("x"), ast.n(1))
    assert negate(ast.TRUE) == ast.FALSE


def test_negate_de_morgan():
    p = ast.And((ast.lt(ast.v("x"), ast.n(1)), ast.gt(ast.v("y"), ast.n(2))))
    q = negate(p)
    assert isinstance(q, ast.Or)
    assert q.parts[0] == ast.ge(ast.v("x"), ast.n(1))


def test_negate_involution_on_comparisons():
    p = ast.le(ast.v("a"), ast.v("b"))
    assert negate(negate(p)) == p


def test_cmp_op_negate_flip():
    assert CmpOp.LT.negate() is CmpOp.GE
    assert CmpOp.LT.flip() is CmpOp.GT
    assert CmpOp.EQ.flip() is CmpOp.EQ


def test_program_inputs_outputs():
    body = ast.seq(ast.In(("A", "n")), ast.assign("x", ast.n(0)), ast.Out(("x",)))
    p = Program("t", {"A": Sort.ARRAY, "n": Sort.INT, "x": Sort.INT}, body)
    assert p.inputs == ("A", "n")
    assert p.outputs == ("x",)


def test_program_sort_of_unknown_raises():
    p = Program("t", {"x": Sort.INT})
    with pytest.raises(KeyError):
        p.sort_of("zzz")


def test_expr_vars_and_unknowns():
    e = ast.upd(ast.v("A"), ast.v("i"), ast.Unknown("e1"))
    assert ast.expr_vars(e) == frozenset({"A", "i"})
    assert ast.expr_unknowns(e) == frozenset({"e1"})


def test_stmt_unknowns_sees_guards_and_assignments():
    body = ast.seq(
        ast.GWhile(ast.UnknownPred("p1"), ast.assign("x", ast.Unknown("e1"))),
        ast.Assume(ast.UnknownPred("p2")),
    )
    assert ast.stmt_unknowns(body) == frozenset({"p1", "p2", "e1"})


def test_assigned_vars():
    body = ast.seq(ast.assign(("x", "y"), (ast.n(1), ast.n(2))),
                   ast.GIf(ast.TRUE, ast.assign("z", ast.n(3)), ast.SKIP))
    assert ast.assigned_vars(body) == frozenset({"x", "y", "z"})


def test_freeze_vmap_sorted():
    assert ast.freeze_vmap({"b": 1, "a": 2}) == (("a", 2), ("b", 1))


def test_sort_element():
    assert Sort.ARRAY.element() is Sort.INT
    assert Sort.STRARRAY.element() is Sort.STR
    with pytest.raises(ValueError):
        Sort.INT.element()
