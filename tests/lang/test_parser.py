"""Parser unit tests, including error positions and precedence."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse_expr, parse_pred, parse_program, parse_stmt


def test_precedence_mul_over_add():
    e = parse_expr("a + b * c")
    assert isinstance(e, ast.BinOp) and e.op is ast.ArithOp.ADD
    assert isinstance(e.right, ast.BinOp) and e.right.op is ast.ArithOp.MUL


def test_unary_minus_folds_literal():
    assert parse_expr("-5") == ast.IntLit(-5)
    e = parse_expr("-x")
    assert e == ast.BinOp(ast.ArithOp.SUB, ast.IntLit(0), ast.Var("x"))


def test_sel_upd_and_funapp():
    e = parse_expr("upd(A, i, sel(B, j) + f(x, 1))")
    assert isinstance(e, ast.Update)
    assert isinstance(e.value, ast.BinOp)
    assert isinstance(e.value.right, ast.FunApp)
    assert e.value.right.name == "f"


def test_unknown_expr_and_pred():
    assert parse_expr("[e1]") == ast.Unknown("e1")
    assert parse_pred("[p1]") == ast.UnknownPred("p1")


def test_pred_connectives():
    p = parse_pred("x < 1 && (y > 2 || !(z = 3))")
    assert isinstance(p, ast.And)
    assert isinstance(p.parts[1], ast.Or)
    assert isinstance(p.parts[1].parts[1], ast.Not)


def test_parallel_assignment():
    s = parse_stmt("x, y := y, x;")
    assert isinstance(s, ast.Assign)
    assert s.targets == ("x", "y")


def test_guarded_and_star_forms():
    g = parse_stmt("while (x < 3) { x := x + 1; }")
    assert isinstance(g, ast.GWhile)
    nd = parse_stmt("while (*) { x := x + 1; }")
    assert isinstance(nd, ast.While)
    gi = parse_stmt("if (x = 0) { y := 1; } else { y := 2; }")
    assert isinstance(gi, ast.GIf)
    ndi = parse_stmt("if (*) { y := 1; }")
    assert isinstance(ndi, ast.If)
    assert ndi.els == ast.SKIP


def test_program_with_decls():
    p = parse_program("program t [int x; array A] { in(A, x); out(A); }")
    assert p.decls["x"] is ast.Sort.INT
    assert p.decls["A"] is ast.Sort.ARRAY
    assert p.inputs == ("A", "x")


def test_error_has_line_and_column():
    with pytest.raises(ParseError) as err:
        parse_stmt("x := ;")
    assert "line 1" in str(err.value)


def test_trailing_input_rejected():
    with pytest.raises(ParseError):
        parse_expr("x + 1 extra")


def test_comments_are_skipped():
    s = parse_stmt("// setup\nx := 1; // done\n")
    assert isinstance(s, ast.Assign)


def test_keywords_not_usable_as_calls():
    e = parse_expr("sel(A, 0)")
    assert isinstance(e, ast.Select)
