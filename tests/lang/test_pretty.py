"""Pretty-printer round-trips, including a hypothesis property."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.lang.pretty import pretty, pretty_expr, pretty_pred, pretty_program

names = st.sampled_from(["x", "y", "z", "A", "i", "n"])


@st.composite
def exprs(draw, depth=0):
    if depth > 3:
        return draw(st.one_of(
            st.builds(ast.Var, names),
            st.builds(ast.IntLit, st.integers(-50, 50)),
        ))
    return draw(st.one_of(
        st.builds(ast.Var, names),
        st.builds(ast.IntLit, st.integers(-50, 50)),
        st.builds(lambda a, b: ast.add(a, b), exprs(depth + 1), exprs(depth + 1)),
        st.builds(lambda a, b: ast.sub(a, b), exprs(depth + 1), exprs(depth + 1)),
        st.builds(lambda a, b: ast.mul(a, b), exprs(depth + 1), exprs(depth + 1)),
        st.builds(lambda a, b: ast.sel(a, b), st.builds(ast.Var, names),
                  exprs(depth + 1)),
        st.builds(ast.Unknown, st.sampled_from(["e1", "e2"])),
    ))


@st.composite
def preds(draw):
    op = draw(st.sampled_from(list(ast.CmpOp)))
    return ast.Cmp(op, draw(exprs()), draw(exprs()))


@given(exprs())
@settings(max_examples=120, deadline=None)
def test_expr_pretty_parse_roundtrip(e):
    assert parse_expr(pretty_expr(e)) == e


@given(preds())
@settings(max_examples=80, deadline=None)
def test_pred_pretty_parse_roundtrip(p):
    assert parse_pred(pretty_pred(p)) == p


def test_program_roundtrip():
    src = """
    program demo [array A; int n; int i] {
      in(A, n);
      assume(n >= 0);
      i := 0;
      while (i < n) {
        A := upd(A, i, sel(A, i) + 1);
        i := i + 1;
      }
      if (*) {
        i := 0;
      } else {
        skip;
      }
      out(A);
      exit;
    }
    """
    p = parse_program(src)
    again = parse_program(pretty_program(p))
    assert again.body == p.body
    assert again.decls == p.decls


def test_pretty_dispatch():
    assert pretty(ast.n(3)) == "3"
    assert pretty(ast.lt(ast.v("x"), ast.n(2))) == "x < 2"
    assert "x := 1;" in pretty(ast.assign("x", ast.n(1)))


def test_pretty_hole_forms():
    h = ast.HoleExpr("e1", (("x", 2),))
    assert "e1" in pretty_expr(h) and "x:2" in pretty_expr(h)
