"""Sort-inference tests."""

import pytest

from repro.lang.ast import Sort
from repro.lang.parser import parse_expr
from repro.lang.types import Signature, SortError, candidate_fits, infer_expr_sort

DECLS = {"x": Sort.INT, "A": Sort.ARRAY, "D": Sort.STRARRAY, "s": Sort.STR}


def test_basic_sorts():
    assert infer_expr_sort(parse_expr("x + 1"), DECLS) is Sort.INT
    assert infer_expr_sort(parse_expr("sel(A, x)"), DECLS) is Sort.INT
    assert infer_expr_sort(parse_expr("upd(A, x, 1)"), DECLS) is Sort.ARRAY
    assert infer_expr_sort(parse_expr("sel(D, 0)"), DECLS) is Sort.STR


def test_unknown_vars_are_none():
    assert infer_expr_sort(parse_expr("mystery"), DECLS) is None
    assert infer_expr_sort(parse_expr("f(x)"), DECLS) is None
    assert infer_expr_sort(parse_expr("f(x)"), DECLS, {"f": Sort.STR}) is Sort.STR


def test_ill_sorted_raises():
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("A + 1"), DECLS)
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("sel(x, 0)"), DECLS)
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("sel(A, A)"), DECLS)


def test_candidate_fits():
    assert candidate_fits(parse_expr("x + 1"), Sort.INT, DECLS)
    assert not candidate_fits(parse_expr("upd(A, x, 1)"), Sort.INT, DECLS)
    assert candidate_fits(parse_expr("upd(A, x, 1)"), Sort.ARRAY, DECLS)
    # Ill-sorted candidates never fit anywhere.
    assert not candidate_fits(parse_expr("A + 1"), Sort.INT, DECLS)
    # Unknown-sort candidates fit optimistically.
    assert candidate_fits(parse_expr("g(x)"), Sort.INT, DECLS)


def test_update_element_mismatch():
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("upd(D, 0, 1)"), DECLS)


def test_funapp_args_are_checked_with_signature():
    sigs = {"f": Signature((Sort.INT,), Sort.STR)}
    assert infer_expr_sort(parse_expr("f(x + 1)"), DECLS, sigs) is Sort.STR
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("f(A)"), DECLS, sigs)
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("f(x, x)"), DECLS, sigs)


def test_funapp_args_are_checked_without_signature():
    # Even with only a result sort (or nothing at all) known about f,
    # ill-sorted argument subexpressions must still be rejected.
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("f(A + 1)"), DECLS, {"f": Sort.STR})
    with pytest.raises(SortError):
        infer_expr_sort(parse_expr("g(sel(x, 0))"), DECLS)
    # Unknown-sort args are fine; only provably bad ones raise.
    assert infer_expr_sort(parse_expr("f(mystery)"), DECLS, {"f": Sort.INT}) is Sort.INT


def test_candidate_fits_rejects_bad_funapp_args():
    sigs = {"f": Signature((Sort.ARRAY,), Sort.INT)}
    assert candidate_fits(parse_expr("f(A)"), Sort.INT, DECLS, sigs)
    assert not candidate_fits(parse_expr("f(x)"), Sort.INT, DECLS, sigs)
    assert not candidate_fits(parse_expr("f(A + 1)"), Sort.INT, DECLS, {"f": Sort.INT})
