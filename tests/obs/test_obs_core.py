"""Unit tests for the observability core: spans, counters, recorders."""

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_recorder():
    """Every test starts and ends with the null recorder installed."""
    old = obs.set_recorder(None)
    yield
    obs.set_recorder(old)


def test_disabled_by_default_and_span_still_times():
    assert not obs.active()
    assert not obs.tracing_enabled()
    with obs.span("x") as sp:
        pass
    assert sp.duration >= 0.0
    # No sinks: counters/observes are no-ops and must not raise.
    obs.count("nothing")
    obs.observe("nothing", 1.0)
    obs.mark("nothing", "x")
    assert obs.current_metrics() is None


def test_metrics_collects_counters_timers_hists():
    metrics = obs.Metrics()
    with obs.use_metrics(metrics):
        assert obs.active()
        assert not obs.tracing_enabled()
        obs.count("c", 2)
        obs.count("c")
        obs.observe("h", 1.5)
        obs.observe("h", 2.5)
        with obs.span("outer"):
            with obs.span("inner"):
                assert obs.current_span() == "outer/inner"
    assert metrics.counter("c") == 3
    assert metrics.counter("missing") == 0
    assert metrics.hists["h"] == [1.5, 2.5]
    assert metrics.timer("outer") >= metrics.timer("inner") >= 0.0
    assert metrics.timer_counts["inner"] == 1
    snap = metrics.snapshot()
    assert snap["counters"]["c"] == 3
    assert not obs.active()


def test_nested_metrics_innermost_wins():
    outer, inner = obs.Metrics(), obs.Metrics()
    with obs.use_metrics(outer):
        obs.count("a")
        with obs.use_metrics(inner):
            obs.count("a")
        obs.count("a")
    assert outer.counter("a") == 2
    assert inner.counter("a") == 1


def test_jsonl_recorder_schema(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    rec = obs.JsonlRecorder(path)
    obs.set_recorder(rec)
    assert obs.tracing_enabled()
    with obs.span("pins.run"):
        obs.count("solve.candidate", 3)
        obs.observe("pins.solutions", 7)
        obs.mark("smt.fingerprint", "deadbeef")
        with obs.span("pins.solve"):
            pass
    obs.set_recorder(None)
    rec.close()

    lines = [json.loads(line) for line in open(path)]
    assert len(lines) == 5
    for event in lines:
        assert set(event) == {"ts", "span", "kind", "name", "value"}
        assert event["ts"] >= 0.0
    by_kind = {}
    for event in lines:
        by_kind.setdefault(event["kind"], []).append(event)
    assert by_kind[obs.KIND_COUNTER][0]["name"] == "solve.candidate"
    assert by_kind[obs.KIND_COUNTER][0]["value"] == 3
    assert by_kind[obs.KIND_COUNTER][0]["span"] == "pins.run"
    assert by_kind[obs.KIND_HIST][0]["value"] == 7
    assert by_kind[obs.KIND_MARK][0]["value"] == "deadbeef"
    # Span events carry their own path; the inner one closes first.
    spans = by_kind[obs.KIND_SPAN]
    assert spans[0]["span"] == "pins.run/pins.solve"
    assert spans[1]["span"] == "pins.run"
    assert spans[1]["value"] >= spans[0]["value"] >= 0.0


def test_jsonl_recorder_appends(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    for _ in range(2):
        rec = obs.JsonlRecorder(path)
        obs.set_recorder(rec)
        with obs.span("run"):
            pass
        obs.set_recorder(None)
        rec.close()
    assert len(open(path).read().splitlines()) == 2


def test_recorder_from_env(tmp_path):
    path = str(tmp_path / "env.jsonl")
    assert obs.recorder_from_env({}) is None
    assert obs.recorder_from_env({obs.ENV_TRACE: "  "}) is None
    rec = obs.recorder_from_env({obs.ENV_TRACE: path})
    assert isinstance(rec, obs.JsonlRecorder)
    rec.close()


def test_set_recorder_returns_previous():
    first = obs.Recorder()
    old = obs.set_recorder(first)
    assert old is obs.NULL_RECORDER
    assert obs.set_recorder(None) is first
