"""Tests for trace parsing, aggregation, and the report CLI."""

import json

import pytest

from repro.obs import (
    TraceError,
    parse_events,
    render_summary,
    summarize,
)
from repro.obs.__main__ import main as obs_main


def _event(span, kind, name, value, ts=0.0):
    return json.dumps({"ts": ts, "span": span, "kind": kind,
                       "name": name, "value": value})


SAMPLE = [
    _event("pins.run/pins.iteration/pins.solve", "span", "pins.solve", 0.2),
    _event("pins.run/pins.iteration", "span", "pins.iteration", 0.3),
    _event("pins.run/pins.iteration/pins.solve", "span", "pins.solve", 0.1),
    _event("pins.run/pins.iteration", "span", "pins.iteration", 0.2),
    _event("pins.run", "span", "pins.run", 0.6),
    _event("pins.run", "counter", "solve.candidate", 5),
    _event("pins.run", "counter", "solve.candidate", 2),
    _event("pins.run", "hist", "pins.solutions", 4),
    _event("pins.run", "hist", "pins.solutions", 10),
    _event("pins.run", "mark", "smt.fingerprint", "abc123"),
]


def test_summarize_builds_span_tree():
    summary = summarize(parse_events(SAMPLE))
    assert summary.events == len(SAMPLE)
    root = summary.node("pins.run")
    assert root.count == 1
    assert root.total == pytest.approx(0.6)
    iteration = summary.node("pins.run/pins.iteration")
    assert iteration.count == 2
    assert iteration.total == pytest.approx(0.5)
    solve = summary.node("pins.run/pins.iteration/pins.solve")
    assert solve.total == pytest.approx(0.3)
    assert iteration.self_time == pytest.approx(0.2)
    assert root.self_time == pytest.approx(0.1)
    assert summary.node("pins.run/missing") is None
    assert summary.phase_times("pins.run") == {
        "pins.iteration": pytest.approx(0.5)}
    assert summary.counters["solve.candidate"] == 7
    hist = summary.hists["pins.solutions"]
    assert (hist.count, hist.minimum, hist.maximum) == (2, 4, 10)
    assert hist.mean == pytest.approx(7.0)
    assert summary.marks["smt.fingerprint"] == 1


def test_render_summary_mentions_every_section():
    text = render_summary(summarize(parse_events(SAMPLE)))
    for needle in ("pins.run", "pins.iteration", "pins.solve",
                   "solve.candidate", "pins.solutions", "smt.fingerprint"):
        assert needle in text


def test_parse_rejects_bad_lines():
    with pytest.raises(TraceError):
        parse_events(["not json"])
    with pytest.raises(TraceError):
        parse_events(['["an", "array"]'])
    with pytest.raises(TraceError):
        parse_events(['{"ts": 0, "kind": "span"}'])  # missing fields
    assert parse_events(["", "   "]) == []


def test_cli_report(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    trace.write_text("\n".join(SAMPLE) + "\n")
    assert obs_main(["report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "pins.run" in out and "solve.candidate" in out


def test_cli_report_json(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    trace.write_text("\n".join(SAMPLE) + "\n")
    assert obs_main(["report", "--json", str(trace)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counters"]["solve.candidate"] == 7
    assert payload["spans"]["pins.run"]["children"]["pins.iteration"]["count"] == 2


def test_cli_missing_file_and_bad_trace(tmp_path, capsys):
    assert obs_main(["report", str(tmp_path / "absent.jsonl")]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text("oops\n")
    assert obs_main(["report", str(bad)]) == 1
