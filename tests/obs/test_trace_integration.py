"""End-to-end observability tests: traced PINS runs on real benchmarks.

Covers the acceptance bar for the obs layer: a traced ``sumi`` run emits
a parseable JSONL trace whose per-phase times account for the run's wall
time, the report renders it, traces are deterministic for a fixed seed
(modulo timestamps), and PinsStats is consistent with the trace counters.
"""

import json

import pytest

from repro import obs
from repro.pins import (
    PinsConfig,
    PinsStats,
    StatsInconsistency,
    check_stats_invariants,
    run_pins,
)
from repro.suite import get_benchmark


def run_sumi(trace_path=None, seed=1):
    task = get_benchmark("sumi").task
    config = PinsConfig(m=10, max_iterations=25, seed=seed,
                        trace=str(trace_path) if trace_path else None)
    return run_pins(task, config)


def test_traced_sumi_run_meets_acceptance(tmp_path):
    trace = tmp_path / "sumi.jsonl"
    result = run_sumi(trace)
    assert result.succeeded

    events = obs.load_trace(str(trace))  # parses & validates the schema
    assert events, "trace is empty"
    summary = obs.summarize(events)

    # Per-phase wall time (direct children of pins.run) accounts for at
    # least 90% of the run's total wall time.
    root = summary.node("pins.run")
    assert root is not None and root.count == 1
    phases = summary.phase_times("pins.run")
    assert set(phases) >= {"pins.setup", "pins.iteration"}
    assert sum(phases.values()) >= 0.9 * root.total
    assert root.total == pytest.approx(result.stats.time_total, rel=0.25)

    # The report renders and names the hot phases.
    text = obs.render_summary(summary)
    for needle in ("pins.run", "pins.iteration", "pins.solve", "solve.sat",
                   "smt.check", "solve.candidate", "smt.sat.decisions"):
        assert needle in text

    # Counters for every instrumented subsystem made it into the trace.
    for counter in ("pins.iteration", "pins.path", "solve.candidate",
                    "smt.queries", "smt.sat.decisions", "smt.sat.propagations"):
        assert summary.counters.get(counter, 0) > 0, counter
    assert summary.marks.get("smt.fingerprint", 0) > 0
    # Theory-bucketed query counts only exist while tracing; they must
    # total to the overall query count.
    theory_total = sum(v for k, v in summary.counters.items()
                      if k.startswith("smt.queries.theory."))
    assert theory_total == summary.counters["smt.queries"]


def _canonical(trace_path):
    """Trace bytes with wall-clock information normalized away."""
    lines = []
    for line in open(trace_path):
        event = json.loads(line)
        del event["ts"]
        if event["kind"] == obs.KIND_SPAN:
            event["value"] = 0.0
        lines.append(json.dumps(event, sort_keys=True))
    return "\n".join(lines).encode()


def test_trace_determinism_for_fixed_seed(tmp_path):
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    r1 = run_sumi(first)
    r2 = run_sumi(second)
    assert r1.status == r2.status
    assert _canonical(first) == _canonical(second)
    # Different seeds take different trajectories (sanity: the canonical
    # form is not insensitive to the run).
    third = tmp_path / "c.jsonl"
    run_sumi(third, seed=5)
    assert _canonical(first) != _canonical(third)


def test_traced_run_checks_stats_invariants(tmp_path):
    # run_pins performs the check itself when tracing; re-run it here
    # explicitly against the returned metrics to make that observable.
    result = run_sumi(tmp_path / "t.jsonl")
    assert result.metrics is not None
    check_stats_invariants(result.stats, result.metrics)


def test_untraced_run_still_agrees_with_metrics():
    result = run_sumi(trace_path=None)
    assert result.metrics is not None
    check_stats_invariants(result.stats, result.metrics)
    # Times in PinsStats are the metrics timers, by construction.
    assert result.stats.time_sat == result.metrics.timer("solve.sat")
    assert result.stats.time_pickone == result.metrics.timer("pins.pickone")


def test_stats_invariant_violations_raise():
    metrics = obs.Metrics()
    metrics.add("pins.iteration", 3)
    stats = PinsStats(iterations=3)
    check_stats_invariants(stats, metrics)  # consistent: no raise

    stats.iterations = 2  # drifted counter
    with pytest.raises(StatsInconsistency, match="pins.iteration"):
        check_stats_invariants(stats, metrics)

    stats.iterations = 3
    metrics.add("solve.blocked_screen", 5)
    stats.blocked_by_screen = 5  # more blocks than candidates tried
    with pytest.raises(StatsInconsistency, match="candidates_tried"):
        check_stats_invariants(stats, metrics)

    metrics.add("solve.candidate", 5)
    stats.candidates_tried = 5
    stats.time_total = 1.0
    stats.time_sat = 2.0  # phases exceed the total
    with pytest.raises(StatsInconsistency, match="phase times"):
        check_stats_invariants(stats, metrics)
