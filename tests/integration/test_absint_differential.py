"""Differential tests: the abstract-interpretation layer must not change
results, only avoid SMT work.

Mirrors ``test_differential.py`` for the absint layer (DESIGN.md §11):
same seed, both runs must stabilize, and the stabilized inverse programs
must be bit-identical.  The screen also has to have actually fired for
the A/B to stay meaningful.
"""

import pytest

from repro.lang.pretty import pretty_program
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark

CASES = [
    ("sumi", dict(m=10, max_iterations=25, seed=1)),
    ("runlength", dict(m=3, max_iterations=20, seed=1)),
]


@pytest.mark.absint
@pytest.mark.parametrize("name,kwargs", CASES, ids=[c[0] for c in CASES])
def test_absint_differential(name, kwargs):
    task = get_benchmark(name).task
    on = run_pins(task, PinsConfig(absint=True, **kwargs))
    off = run_pins(task, PinsConfig(absint=False, **kwargs))

    assert on.status == "stabilized", f"{name} (absint on): {on.status}"
    assert off.status == "stabilized", f"{name} (absint off): {off.status}"

    programs_on = {pretty_program(p) for p in on.inverse_programs()}
    programs_off = {pretty_program(p) for p in off.inverse_programs()}
    assert programs_on == programs_off, (
        f"{name}: absint changed the synthesized inverses")

    # The screen must have decided checks abstractly, and every one it
    # decided is an SMT check the baseline had to run.
    assert on.stats.absint_screen_holds > 0, name
    assert off.stats.absint_screen_holds == 0, name
    assert off.stats.absint_screen_refutes == 0, name
    assert on.stats.checker_smt_checks < off.stats.checker_smt_checks, (
        f"{name}: screen saved no checker SMT work "
        f"({on.stats.checker_smt_checks} vs {off.stats.checker_smt_checks})")
    # Symexec feasibility queries can only shrink under ⊥-guard pruning.
    assert on.stats.symexec_smt_calls <= off.stats.symexec_smt_calls, name
