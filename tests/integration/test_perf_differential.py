"""Differential tests for the repro.perf layer (DESIGN.md §10 contract).

A PINS run must produce bit-identical results whether probes run
serially or fanned out across forked workers, and whether the SMT query
cache is off, cold, or warm: the perf layer may only change wall time.
These tests pin that down on sumi (full config) and a reduced runlength.
"""

import hashlib

import pytest

from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark


def fingerprint(result):
    """Everything observable about a run's outcome, hashable."""
    solutions = tuple(sorted(s.describe() for s in result.solutions))
    digest = hashlib.sha256("\n".join(solutions).encode()).hexdigest()
    return (result.status, result.stats.iterations,
            result.stats.paths_explored, len(result.solutions), digest)


def run(name, *, jobs=None, query_cache=None, force_fork=False,
        monkeypatch=None, **overrides):
    if force_fork:
        monkeypatch.setenv("REPRO_JOBS_FORCE", "1")
    elif monkeypatch is not None:
        monkeypatch.delenv("REPRO_JOBS_FORCE", raising=False)
    config = dict(m=10, max_iterations=25, seed=1)
    if name == "runlength":
        config = dict(m=6, max_iterations=6, seed=1)
    config.update(overrides)
    task = get_benchmark(name).task
    return run_pins(task, PinsConfig(jobs=jobs, query_cache=query_cache,
                                     **config))


@pytest.mark.parametrize("name", ["sumi", "runlength"])
def test_jobs4_matches_serial(name, monkeypatch):
    serial = run(name, jobs=1, monkeypatch=monkeypatch)
    parallel = run(name, jobs=4, force_fork=True, monkeypatch=monkeypatch)
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("name", ["sumi", "runlength"])
def test_cache_on_matches_cache_off(name, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_QUERY_CACHE", raising=False)
    off = run(name)
    cache_dir = str(tmp_path) + "/"
    cold = run(name, query_cache=cache_dir)
    warm = run(name, query_cache=cache_dir)
    assert fingerprint(cold) == fingerprint(off)
    assert fingerprint(warm) == fingerprint(off)
    # |F| growth (paths explored per iteration) is identical, and the
    # warm run actually exercised the cache.
    assert warm.stats.smt_cache_hits > 0
    assert warm.stats.smt_cache_hits > cold.stats.smt_cache_hits


def test_jobs_and_warm_cache_together_match_serial(tmp_path, monkeypatch):
    # absint off: the abstract screen decides every checker query on sumi,
    # which would leave the parent process with no SMT traffic to cache —
    # this test exists to exercise fork + warm-cache interplay.
    serial = run("sumi", monkeypatch=monkeypatch, absint=False)
    cache_dir = str(tmp_path) + "/"
    run("sumi", query_cache=cache_dir, absint=False)  # prime
    combined = run("sumi", jobs=4, query_cache=cache_dir,
                   force_fork=True, monkeypatch=monkeypatch, absint=False)
    assert fingerprint(combined) == fingerprint(serial)
    assert combined.stats.smt_cache_hits > 0


def test_memory_cache_matches_disk_cache(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_QUERY_CACHE", raising=False)
    mem = run("sumi", query_cache="mem")
    disk = run("sumi", query_cache=str(tmp_path) + "/")
    assert fingerprint(mem) == fingerprint(disk)
