"""Differential tests: the static-pruning layer must not change results.

PR 1's benchmark notes claimed pruning leaves the synthesized inverses
identical; this locks that claim in as a test.  Both runs use the same
seed, and both must stabilize — a stabilized solution set is the
algorithm's fixpoint, so it is the right artifact to compare (solution
*order* and auxiliary rank!/inv! holes may differ; the instantiated
programs may not).
"""

import pytest

from repro.lang.pretty import pretty_program
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark

CASES = [
    ("sumi", dict(m=10, max_iterations=25, seed=1)),
    ("runlength", dict(m=3, max_iterations=20, seed=1)),
]


@pytest.mark.parametrize("name,kwargs", CASES, ids=[c[0] for c in CASES])
def test_static_pruning_differential(name, kwargs):
    task = get_benchmark(name).task
    on = run_pins(task, PinsConfig(static_pruning=True, **kwargs))
    off = run_pins(task, PinsConfig(static_pruning=False, **kwargs))

    assert on.status == "stabilized", f"{name} (pruning on): {on.status}"
    assert off.status == "stabilized", f"{name} (pruning off): {off.status}"

    programs_on = {pretty_program(p) for p in on.inverse_programs()}
    programs_off = {pretty_program(p) for p in off.inverse_programs()}
    assert programs_on == programs_off, (
        f"{name}: pruning changed the synthesized inverses")

    # The stabilized solution sets agree on every program hole (auxiliary
    # ranking/invariant holes are excluded — they never reach the program).
    from repro.pins.solve import is_auxiliary_hole

    def program_keys(result):
        return {
            (tuple((n, e) for n, e in s.exprs if not is_auxiliary_hole(n)),
             tuple((n, p) for n, p in s.preds if not is_auxiliary_hole(n)))
            for s in result.solutions
        }

    assert program_keys(on) == program_keys(off), (
        f"{name}: pruning changed the stabilized solution set")

    # Pruning must actually have pruned something for the comparison to
    # be a meaningful A/B (otherwise this test silently degrades).
    assert on.stats.indicators_pruned > 0, name
    assert off.stats.indicators_pruned == 0, name
