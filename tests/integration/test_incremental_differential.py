"""Differential tests for incremental SMT contexts (warm vs. fresh).

Two layers of defense for the determinism contract:

* **end-to-end** — a PINS run with ``REPRO_INCREMENTAL`` on must produce
  bit-identical inverses (and trajectory statistics) to one with it off;
* **query-stream replay** — the exact query stream a real run issues is
  recorded and replayed through one warm :class:`IncrementalContext` per
  query family *and* a cold :class:`Solver` per query, asserting the
  verdicts agree wherever both decide, and that every fresh ``sat``
  model concretely evaluates the full assertion set to true.

The replay is the sharp edge: warm contexts accumulate retained lemmas,
learned clauses, and interned state query over query, so a single unsound
retention shows up as a warm/fresh verdict split on some later query even
when early queries agree.
"""

import hashlib

import pytest

from repro.pins import PinsConfig, run_pins
from repro.pins.checker import ConstraintChecker
from repro.smt.incremental import IncrementalContext
from repro.smt.models import eval_formula
from repro.smt.solver import SAT, UNKNOWN, UNSAT, Solver
from repro.suite import get_benchmark

CASES = {
    "sumi": dict(m=10, max_iterations=25, seed=1),
    "runlength": dict(m=6, max_iterations=6, seed=1),
}

REPLAY_CAP = 150
"""Queries replayed per recorded stream: enough to cross many scope
pushes/retirements per family while keeping the test's runtime bounded."""


def fingerprint(result):
    solutions = tuple(sorted(s.describe() for s in result.solutions))
    digest = hashlib.sha256("\n".join(solutions).encode()).hexdigest()
    return (result.status, result.stats.iterations,
            result.stats.paths_explored, len(result.solutions), digest)


def run(name, incremental, monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
    task = get_benchmark(name).task
    return run_pins(task, PinsConfig(incremental=incremental, **CASES[name]))


@pytest.mark.parametrize("name", sorted(CASES))
def test_incremental_matches_oneshot(name, monkeypatch):
    on = run(name, True, monkeypatch)
    off = run(name, False, monkeypatch)
    assert fingerprint(on) == fingerprint(off)
    assert on.stats.checker_smt_checks == off.stats.checker_smt_checks


def record_stream(name, monkeypatch):
    """Run ``name`` with contexts off, recording every checker query."""
    records = []
    orig = ConstraintChecker._check_sat

    def spy(self, preds, want_model=True, inc_src=None):
        records.append((self, tuple(preds), inc_src))
        return orig(self, preds, want_model=want_model, inc_src=inc_src)

    monkeypatch.setattr(ConstraintChecker, "_check_sat", spy)
    try:
        result = run(name, False, monkeypatch)
    finally:
        monkeypatch.setattr(ConstraintChecker, "_check_sat", orig)
    assert result.solutions, f"{name} run produced no solutions to record"
    return records


def _eval_is_exact(formula):
    """Whether concrete evaluation decides ``formula`` exactly.

    Solver models are only concretely *total* on pure linear arithmetic:
    array equalities are decided up to the observed ``select`` set (no
    extensionality — see EXPERIMENTS.md known deviations), and a select
    or application valued through its EUF class may be absent from the
    LIA assignment, so reconstruction defaults it to 0.  Model-eval
    assertions are restricted to formulas built purely from arithmetic
    over variables and constants, where ``eval_formula`` and the solver
    agree by construction.
    """
    from repro.smt.terms import Op

    opaque = (Op.SELECT, Op.STORE, Op.APP, Op.MUL, Op.DIV, Op.MOD)
    stack = [formula]
    while stack:
        t = stack.pop()
        if t.op in opaque or t.sort.is_array:
            return False
        stack.extend(t.args)
    return True


@pytest.mark.parametrize("name", sorted(CASES))
def test_replayed_stream_verdicts_agree(name, monkeypatch):
    from repro.symexec.translate import Translator

    records = record_stream(name, monkeypatch)
    assert records, "no queries recorded"
    contexts = {}
    compared = 0
    warm_answers = 0
    for checker, preds, inc_src in records:
        if compared >= REPLAY_CAP:
            break
        if inc_src is None:
            continue
        base = checker._inc_base_terms(inc_src)
        if not base:
            continue
        translator = Translator(checker.sorts, checker.externs)
        try:
            assertions = [translator.pred(p) for p in preds]
        except Exception:
            continue
        if not {t.id for t in base} <= {t.id for t in assertions}:
            continue
        probe = Solver(axioms=checker.axioms,
                       sat_conflict_budget=checker.conflict_budget,
                       lia_branch_limit=checker.lia_branch_limit)
        key = tuple(t.id for t in base)
        ctx = contexts.get(key)
        if ctx is None:
            ctx = IncrementalContext(
                base, checker.axioms,
                instantiation_rounds=probe.instantiation_rounds,
                max_theory_rounds=probe.max_theory_rounds,
                sat_conflict_budget=probe.sat_conflict_budget,
                lia_branch_limit=probe.lia_branch_limit)
            contexts[key] = ctx
        warm = ctx.check_delta(assertions)
        for f in assertions:
            probe.add(f)
        fresh = probe.check()
        if fresh == SAT:
            model = probe.model_if_available()
            assert model is not None
            exact = [f for f in assertions if _eval_is_exact(f)]
            assert all(eval_formula(model, f) for f in exact), \
                "fresh model fails concrete evaluation"
        if warm is not None and fresh != UNKNOWN:
            assert warm == fresh, \
                f"warm={warm} fresh={fresh} on query {compared} of {name}"
            warm_answers += 1
        compared += 1
    assert compared >= 30, f"only {compared} comparable queries in {name}"
    assert warm_answers >= 10, \
        f"warm context answered only {warm_answers} queries in {name}"
