"""End-to-end PINS runs on the fast benchmarks (the slow ones run in the
benchmark harness, not the unit-test suite)."""

import pytest

from repro.baselines.randompath import path_explosion, pins_with_random_pickone
from repro.baselines.sketchlite import run_sketchlite
from repro.pins import PinsConfig, build_template, run_pins
from repro.suite import get_benchmark
from repro.validate.bmc import BmcBounds
from repro.validate.roundtrip import random_pool, validate_inverse


def synthesize_and_validate(name, **config_kwargs):
    bench = get_benchmark(name)
    task = bench.task
    config = PinsConfig(m=10, max_iterations=25, seed=1, **config_kwargs)
    result = run_pins(task, config)
    assert result.succeeded, f"{name}: {result.status}"
    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    pool = list(task.initial_inputs)
    if task.input_gen is not None:
        pool += random_pool(task.input_gen, 25, seed=7)
    reports = [
        validate_inverse(task.program, inverse, spec, pool, task.externs,
                         precondition=task.precondition)
        for inverse in result.inverse_programs()
    ]
    assert any(r.ok for r in reports), f"{name}: no returned candidate is correct"
    return bench, result, reports


def test_sumi_end_to_end():
    bench, result, reports = synthesize_and_validate("sumi")
    assert result.status in ("stabilized", "max_iterations")
    # Small path bound: a handful of paths characterize the program.
    assert result.stats.paths_explored <= 15


def test_vector_shift_end_to_end():
    _bench, result, reports = synthesize_and_validate("vector_shift")
    assert len(result.solutions) == 1
    assert reports[0].ok
    assert result.stats.paths_explored <= 6


def test_vector_scale_end_to_end_with_axioms():
    _bench, result, reports = synthesize_and_validate("vector_scale")
    assert reports[0].ok


def test_time_breakdown_dominated_by_smt_and_symexec():
    bench = get_benchmark("vector_shift")
    result = run_pins(bench.task, PinsConfig(m=10, max_iterations=20, seed=1))
    breakdown = result.stats.breakdown()
    heavy = breakdown["smt_reduction"] + breakdown["symexec"] + breakdown["sat"]
    assert heavy > 0.5  # Table 4's shape


def test_random_pickone_still_converges():
    bench = get_benchmark("sumi")
    result = pins_with_random_pickone(
        bench.task, PinsConfig(m=10, max_iterations=25, seed=2))
    assert result.succeeded


def test_path_explosion_matches_papers_story():
    explosion = path_explosion(get_benchmark("inplace_rl").task, max_unroll=3)
    # Section 2.4: thousands of syntactic paths at three unrollings.
    assert explosion.paths > 1000


def test_sketchlite_solves_vector_shift():
    bench = get_benchmark("vector_shift")
    template = build_template(bench.task, static_pruning=False)
    bounds = BmcBounds(unroll=bench.task.bmc_unroll,
                       array_size=2, value_range=(0, 1), scalar_range=(0, 1),
                       max_cases=300)
    result = run_sketchlite(bench.task, template, bounds, timeout=60)
    assert result.status == "sat"


def test_sketchlite_rejects_axiomatized_benchmarks():
    bench = get_benchmark("vector_scale")
    template = build_template(bench.task, static_pruning=False)
    result = run_sketchlite(bench.task, template, BmcBounds(), timeout=5)
    assert result.status == "unsupported"
