"""Differential tests: the forward-backward unknowns analysis and the
linear checker screen must not change results, only avoid SMT work.

Mirrors ``test_absint_differential.py`` for the fwdbwd layer
(DESIGN.md §13): same seed, both runs must stabilize, and the
stabilized inverse programs must be bit-identical.  The screen is
HOLDS-only by construction, so this A/B is the whole trajectory-safety
argument made executable.
"""

import pytest

from repro.lang.pretty import pretty_program
from repro.pins import PinsConfig, run_pins
from repro.suite import get_benchmark

CASES = [
    ("sumi", dict(m=10, max_iterations=25, seed=1)),
    ("runlength", dict(m=3, max_iterations=20, seed=1)),
]


@pytest.mark.parametrize("name,kwargs", CASES, ids=[c[0] for c in CASES])
def test_fwdbwd_differential(name, kwargs):
    task = get_benchmark(name).task
    on = run_pins(task, PinsConfig(fwdbwd=True, **kwargs))
    off = run_pins(task, PinsConfig(fwdbwd=False, **kwargs))

    assert on.status == "stabilized", f"{name} (fwdbwd on): {on.status}"
    assert off.status == "stabilized", f"{name} (fwdbwd off): {off.status}"

    programs_on = {pretty_program(p) for p in on.inverse_programs()}
    programs_off = {pretty_program(p) for p in off.inverse_programs()}
    assert programs_on == programs_off, (
        f"{name}: fwdbwd changed the synthesized inverses")

    # The linear screen must have decided checks, and each one it decided
    # is a checker SMT query the baseline had to pay for.
    assert on.stats.fwdbwd_screen_holds > 0, name
    assert off.stats.fwdbwd_screen_holds == 0, name
    assert on.stats.checker_smt_checks < off.stats.checker_smt_checks, (
        f"{name}: screen saved no checker SMT work "
        f"({on.stats.checker_smt_checks} vs {off.stats.checker_smt_checks})")
    # The static pass never refutes anything on the permissive real
    # templates, so the CDCL trajectory is identical by construction.
    assert on.stats.fwdbwd_units_refuted == 0, name
    assert on.stats.fwdbwd_pairs_refuted == 0, name
