"""Inversion-spec tests."""

import pytest

from repro.concrete.values import ConcreteArray
from repro.lang import ast
from repro.lang.ast import Sort
from repro.pins.spec import InversionSpec


def test_derive_pairs_by_sort_groups():
    sorts = {"A": Sort.ARRAY, "n": Sort.INT, "Ap": Sort.ARRAY, "ip": Sort.INT}
    spec = InversionSpec.derive(("A", "n"), ("Ap", "ip"), sorts)
    assert spec.scalar_pairs == (("n", "ip"),)
    assert spec.array_pairs == (("A", "Ap", "n"),)


def test_derive_mismatch_raises():
    sorts = {"A": Sort.ARRAY, "n": Sort.INT, "ip": Sort.INT}
    with pytest.raises(ValueError):
        InversionSpec.derive(("A", "n"), ("ip",), sorts)


def test_negated_disjuncts_shape():
    spec = InversionSpec(scalar_pairs=(("n", "ip"),),
                         array_pairs=(("A", "Ap", "n"),))
    disjuncts = spec.negated_disjuncts((("ip", 4), ("Ap", 3)))
    assert len(disjuncts) == 2
    scalar, array = disjuncts
    assert scalar == ast.ne(ast.Var("n#0"), ast.Var("ip#4"))
    names = ast.expr_vars(array)
    assert "A#0" in names and "Ap#3" in names and "specK#0" in names


def test_final_version_references():
    spec = InversionSpec(scalar_pairs=(("@b", "bp"),))
    disjuncts = spec.negated_disjuncts((("b", 5), ("bp", 2)))
    assert disjuncts[0] == ast.ne(ast.Var("b#5"), ast.Var("bp#2"))


def test_check_env_scalar_and_array():
    spec = InversionSpec(scalar_pairs=(("n", "ip"),),
                         array_pairs=(("A", "Ap", "n"),))
    vmap = (("ip", 2), ("Ap", 1))
    env = {
        "n#0": 2, "ip#2": 2,
        "A#0": ConcreteArray.from_list([7, 8]),
        "Ap#1": ConcreteArray.from_list([7, 8, 99]),  # extra junk past n ok
    }
    assert spec.check_env(env, vmap)
    env["Ap#1"] = ConcreteArray.from_list([7, 9])
    assert not spec.check_env(env, vmap)


def test_check_env_negative_length_rejected():
    spec = InversionSpec(array_pairs=(("A", "Ap", "n"),))
    env = {"n#0": -1, "A#0": ConcreteArray(), "Ap#0": ConcreteArray()}
    assert not spec.check_env(env, ())


def test_check_states_roundtrip_view():
    spec = InversionSpec(scalar_pairs=(("n", "ip"),),
                         array_pairs=(("A", "Ap", "n"),))
    inputs = {"n": 1, "A": ConcreteArray.from_list([3])}
    final = {"ip": 1, "Ap": ConcreteArray.from_list([3])}
    assert spec.check_states(inputs, final)
    final["ip"] = 0
    assert not spec.check_states(inputs, final)


def test_concrete_pairs_not_in_disjuncts():
    spec = InversionSpec(concrete_pairs=(("root", "op"),))
    assert spec.negated_disjuncts(()) == []
    assert not spec.check_states({"root": ("cons", 1, ("nil",))},
                                 {"op": ("nil",)})
    assert spec.check_states({"root": ("nil",)}, {"op": ("nil",)})
