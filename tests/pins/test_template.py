"""Hole-space and solution tests."""

import pytest

from repro.lang import ast
from repro.lang.ast import Sort
from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.pins.template import HoleSpace, Solution, SynthesisTemplate

TEMPLATE = parse_program("""
program inv [int s; int ip; array Ap] {
  ip := [e1];
  while ([p1]) {
    ip := [e2];
    Ap := [e3];
  }
  out(ip);
}
""")

PHI_E = tuple(parse_expr(t) for t in ["0", "s", "ip + 1", "upd(Ap, ip, s)"])
PHI_P = tuple(parse_pred(t) for t in ["ip < s", "ip > 0"])


def build_space(**kwargs):
    return HoleSpace.build(TEMPLATE.body, PHI_E, PHI_P,
                           decls={"s": Sort.INT, "ip": Sort.INT,
                                  "Ap": Sort.ARRAY}, **kwargs)


def test_holes_discovered_in_order():
    space = build_space()
    assert [n for n, _ in space.expr_holes] == ["e1", "e2", "e3"]
    assert [n for n, _ in space.pred_holes] == ["p1"]


def test_sort_filtering():
    space = build_space()
    cands = dict(space.expr_holes)
    assert all(not isinstance(c, ast.Update) for c in cands["e1"])  # int slot
    assert [str(c) for c in cands["e3"]] == ["upd(Ap, ip, s)"]  # array slot


def test_overrides():
    space = build_space(expr_overrides={"e1": (parse_expr("0"),)})
    assert dict(space.expr_holes)["e1"] == (parse_expr("0"),)


def test_size_counting():
    space = build_space(max_pred_conj=2)
    # e1, e2: 3 int candidates each; e3: 1; p1: subsets of 2 preds = 4.
    assert space.size() == 3 * 3 * 1 * 4
    assert space.pred_subset_count(3) == 7  # <=2 of 3


def test_size_excludes_auxiliary_holes():
    space = build_space().with_rank_holes(
        {"rank!L": (parse_expr("s - ip"),)},
        {"inv!L": PHI_P})
    assert space.size() == build_space().size()
    assert space.size(include_auxiliary=True) > space.size()


def test_solution_key_and_describe():
    sol = Solution(exprs=(("e1", parse_expr("0")),),
                   preds=(("p1", (parse_pred("ip < s"),)),))
    assert sol.key == sol.key
    assert "e1 -> 0" in sol.describe()
    empty = Solution(exprs=(), preds=(("p1", ()),))
    assert "true" in empty.describe()


def test_instantiate_rejects_partial_solutions():
    program = parse_program("program p [int s] { in(s); out(s); }")
    space = build_space()
    template = SynthesisTemplate(program, TEMPLATE, space)
    partial = Solution(exprs=(("e1", parse_expr("0")),), preds=())
    with pytest.raises(ValueError):
        template.instantiate(partial)


def test_instantiate_produces_guarded_program():
    program = parse_program("program p [int s] { in(s); out(s); }")
    space = build_space()
    template = SynthesisTemplate(program, TEMPLATE, space)
    sol = Solution(
        exprs=(("e1", parse_expr("0")), ("e2", parse_expr("ip + 1")),
               ("e3", parse_expr("upd(Ap, ip, s)"))),
        preds=(("p1", (parse_pred("ip < s"),)),),
    )
    inverse = template.instantiate(sol)
    assert not ast.stmt_unknowns(inverse.body)
    loops = [s for s in ast.walk_stmts(inverse.body) if isinstance(s, ast.GWhile)]
    assert loops[0].cond == parse_pred("ip < s")
