"""Property-style tests of the PINS main loop's invariants."""

import random

import pytest

from repro.pins import PinsConfig, run_pins
from repro.pins.algorithm import build_template
from repro.suite import get_benchmark


@pytest.fixture(scope="module")
def sumi_result():
    bench = get_benchmark("sumi")
    return bench, run_pins(bench.task, PinsConfig(m=10, max_iterations=25, seed=1))


def test_paths_are_distinct(sumi_result):
    _bench, result = sumi_result
    assert len(set(result.explored)) == len(result.explored)


def test_solutions_are_program_distinct(sumi_result):
    from repro.pins.solve import _program_key

    _bench, result = sumi_result
    keys = [_program_key(s) for s in result.solutions]
    assert len(set(keys)) == len(keys)


def test_solutions_fill_every_template_hole(sumi_result):
    bench, result = sumi_result
    template = build_template(bench.task)
    hole_names = {n for n, _ in template.space.expr_holes}
    hole_names |= {n for n, _ in template.space.pred_holes}
    for sol in result.solutions:
        assigned = {n for n, _ in sol.exprs} | {n for n, _ in sol.preds}
        assert hole_names <= assigned


def test_instantiated_inverses_have_no_holes(sumi_result):
    from repro.lang import ast

    _bench, result = sumi_result
    for inverse in result.inverse_programs():
        assert not ast.stmt_unknowns(inverse.body)


def test_stats_are_coherent(sumi_result):
    _bench, result = sumi_result
    stats = result.stats
    assert stats.paths_explored == len(result.explored)
    assert stats.num_solutions == len(result.solutions)
    assert stats.iterations >= stats.paths_explored  # one path per iteration
    assert stats.time_total > 0
    fractions = stats.breakdown()
    assert 0 <= sum(fractions.values()) <= 1.01


def test_determinism_given_seed():
    bench = get_benchmark("vector_shift")
    r1 = run_pins(bench.task, PinsConfig(m=6, max_iterations=15, seed=9))
    r2 = run_pins(bench.task, PinsConfig(m=6, max_iterations=15, seed=9))
    assert [s.key for s in r1.solutions] == [s.key for s in r2.solutions]
    assert r1.stats.paths_explored == r2.stats.paths_explored


def test_tests_pool_respects_initial_inputs():
    bench = get_benchmark("sumi")
    result = run_pins(bench.task, PinsConfig(m=6, max_iterations=10, seed=4))
    # All deterministic seed inputs must be in the pool.
    for seed_input in bench.task.initial_inputs:
        assert any(t.get("n") == seed_input["n"] for t in result.tests)
