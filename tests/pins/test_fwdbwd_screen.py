"""The checker's linear (fwdbwd) screening tier.

The screen must be trajectory-safe: HOLDS-only answers, with every
proven-UNSAT query primed into the SAT-result cache exactly as the
solver would have stored it, so a run with the screen on visits the
same candidates as a run with it off.
"""

from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.pins.checker import HOLDS, ConstraintChecker
from repro.pins.constraints import Constraint, safepath
from repro.pins.pickone import infeasible_score
from repro.pins.spec import InversionSpec
from repro.pins.template import Solution
from repro.symexec.paths import Def, Guard, Path

SORTS = {"n": ast.Sort.INT, "y": ast.Sort.INT, "yp": ast.Sort.INT}
SPEC = InversionSpec(scalar_pairs=(("n", "yp"),))
EMPTY = Solution(exprs=(), preds=())


def contradictory_path():
    items = (
        Guard(ast.lt(ast.Var("n#0"), ast.n(0))),
        Guard(ast.gt(ast.Var("n#0"), ast.n(0))),
        Def("yp", 1, ast.Var("n#0")),
    )
    return Path(items, (("n", 0), ("yp", 1)))


def checker(**kw):
    kw.setdefault("fwdbwd", True)
    kw.setdefault("absint", False)
    return ConstraintChecker(SORTS, input_vars={"n": ast.Sort.INT}, **kw)


def test_screen_holds_vacuously_and_primes_sat_cache():
    chk = checker()
    c = safepath(contradictory_path(), SPEC, "p")
    outcome = chk.fwdbwd_screen(c, EMPTY)
    assert outcome is not None
    assert outcome.status == HOLDS and outcome.vacuous
    assert outcome.via == "fwdbwd"
    # No solver ran, yet a later feasibility probe on the same ground is
    # a cache hit with the exact entry SMT would have stored.
    assert chk.stats.smt_checks == 0
    ground = chk._ground(c, EMPTY)
    assert chk.has_cached(ground)
    status, model = chk._check_sat(ground, want_model=False)
    assert (status, model) == ("unsat", None)
    assert chk.stats.smt_checks == 0  # still never invoked the solver
    assert chk.stats.fwdbwd_screens == 1 and chk.stats.fwdbwd_holds == 1


def test_screen_folds_goal_constraints():
    # decrease constraint: rank = n - yp, body bumps yp by one, so the
    # negated decrease goal folds to constant False for every input.
    items = (Def("yp", 1, ast.add(ast.Var("yp#0"), ast.n(1))),)
    neg = ast.ge(ast.sub(ast.Var("n#0"), ast.Var("yp#1")),
                 ast.sub(ast.Var("n#0"), ast.Var("yp#0")))
    c = Constraint(kind="decrease", label="d", items=items, neg_goal=neg)
    chk = checker()
    outcome = chk.fwdbwd_screen(c, EMPTY)
    assert outcome is not None
    assert outcome.status == HOLDS and outcome.via == "fwdbwd"
    assert chk.stats.smt_checks == 0


def test_screen_abstains_on_satisfiable_ground():
    items = (Def("yp", 1, ast.add(ast.Var("y#0"), ast.n(1))),)
    c = safepath(Path(items, (("n", 0), ("yp", 1))), SPEC, "p")
    chk = checker()
    assert chk.fwdbwd_screen(c, EMPTY) is None
    assert chk.stats.fwdbwd_screens == 1 and chk.stats.fwdbwd_holds == 0
    assert not chk.has_cached(chk._ground(c, EMPTY))


def test_check_routes_through_screen_when_enabled():
    c = safepath(contradictory_path(), SPEC, "p")
    on = checker()
    outcome = on.check(c, EMPTY)
    assert outcome.via == "fwdbwd" and outcome.status == HOLDS
    assert on.stats.smt_checks == 0
    # With the switch off the same check runs on the solver and agrees.
    off = checker(fwdbwd=False)
    assert off.fwdbwd is False
    outcome = off.check(c, EMPTY)
    assert outcome.via == "smt" and outcome.status == HOLDS
    assert off.stats.fwdbwd_screens == 0
    assert off.stats.smt_checks > 0


def test_infeasible_score_consults_fwdbwd_report():
    refuted_expr = parse_expr("0 - y")

    class FakeReport:
        def allows(self, solution):
            return dict(solution.exprs).get("e1") != refuted_expr

    chk = checker()
    chk.fwdbwd_report = FakeReport()
    explored = [contradictory_path(), contradictory_path()]
    refuted = Solution(exprs=(("e1", parse_expr("0 - y")),), preds=())
    allowed = Solution(exprs=(("e1", parse_expr("y - 1")),), preds=())
    # A statically refuted solution gets the maximal score without any
    # feasibility probes; an allowed one is scored the normal way.
    assert infeasible_score(refuted, explored, chk) == len(explored)
    assert chk.stats.smt_checks == 0
    score = infeasible_score(allowed, explored, chk)
    assert score == 2  # both contradictory paths are infeasible under it
