"""Termination-constraint tests (bounded / decrease / preserve / init)."""

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.lang.transform import desugar_program
from repro.pins.checker import HOLDS, VIOLATED, ConstraintChecker
from repro.pins.template import Solution
from repro.pins.termination import (
    derive_ranking_candidates,
    init_constraints,
    invariant_hole_name,
    rank_hole_name,
    template_loops,
    terminate,
)


def test_derive_ranking_candidates():
    phi_p = (parse_pred("sp > 0"), parse_pred("mp < m"),
             parse_pred("a <= b"), parse_pred("x >= y"))
    ranks = derive_ranking_candidates(phi_p)
    texts = [str(r) for r in ranks]
    assert "((sp - 0) - 1)" in texts
    assert "((m - mp) - 1)" in texts
    assert "(b - a)" in texts
    assert "(x - y)" in texts


def test_equalities_do_not_contribute_ranks():
    assert derive_ranking_candidates((parse_pred("a = b"),)) == ()


PROGRAM = desugar_program(parse_program("""
program t [int s; int sp; int ip] {
  in(s);
  out(s);
  ip, sp := [e1], [e2];
  while ([p1]) {
    ip := [e3];
    sp := [e4];
  }
  out(ip);
}
"""))


def test_template_loops_finds_unknown_guards():
    loops = template_loops(PROGRAM.body)
    assert len(loops) == 1
    loop_id, guard, _body = loops[0]
    assert isinstance(guard, ast.UnknownPred)


def test_terminate_constraint_kinds():
    constraints = terminate(PROGRAM.body, PROGRAM.decls)
    kinds = {c.kind for c in constraints}
    assert kinds == {"bounded", "decrease", "preserve"}
    bounded = [c for c in constraints if c.kind == "bounded"][0]
    loop_id = template_loops(PROGRAM.body)[0][0]
    assert rank_hole_name(loop_id) in bounded.relevant


def checker():
    return ConstraintChecker(PROGRAM.decls)


def good_solution(loop_id):
    return Solution(
        exprs=(("e1", parse_expr("0")), ("e2", parse_expr("s")),
               ("e3", parse_expr("ip + 1")), ("e4", parse_expr("sp - ip")),
               (rank_hole_name(loop_id), parse_expr("(sp - 0) - 1"))),
        preds=(("p1", (parse_pred("sp > 0"),)),
               (invariant_hole_name(loop_id), (parse_pred("ip >= 0"),))),
    )


def test_ground_truth_passes_termination():
    loop_id = template_loops(PROGRAM.body)[0][0]
    chk = checker()
    for c in terminate(PROGRAM.body, PROGRAM.decls):
        assert chk.check(c, good_solution(loop_id)).status == HOLDS


def test_nondecreasing_rank_violates():
    loop_id = template_loops(PROGRAM.body)[0][0]
    sol = good_solution(loop_id)
    bad = Solution(
        exprs=tuple((n, parse_expr("ip - 0") if n == rank_hole_name(loop_id) else e)
                    for n, e in sol.exprs),
        preds=sol.preds,
    )
    chk = checker()
    decrease = [c for c in terminate(PROGRAM.body, PROGRAM.decls)
                if c.kind == "decrease"]
    # rank = ip grows, so some decrease constraint must be violated.
    assert any(chk.check(c, bad).status == VIOLATED for c in decrease)


def test_true_guard_fails_bounded():
    loop_id = template_loops(PROGRAM.body)[0][0]
    sol = good_solution(loop_id)
    bad = Solution(exprs=sol.exprs,
                   preds=(("p1", ()),  # guard "true": never bounded
                          (invariant_hole_name(loop_id), (parse_pred("ip >= 0"),))))
    chk = checker()
    bounded = [c for c in terminate(PROGRAM.body, PROGRAM.decls)
               if c.kind == "bounded"][0]
    assert chk.check(bounded, bad).status == VIOLATED


def test_init_constraints_from_path_entries():
    from repro.symexec.executor import SymbolicExecutor
    import random

    loop_id = template_loops(PROGRAM.body)[0][0]
    ex = SymbolicExecutor(PROGRAM)
    sol = good_solution(loop_id)
    path = ex.find_path(sol.expr_map, sol.pred_map, set(), random.Random(0))
    inits = init_constraints(path, PROGRAM.body, "p0")
    assert len(inits) == 1
    assert inits[0].kind == "init"
    chk = checker()
    assert chk.check(inits[0], sol).status == HOLDS
