"""ConstraintChecker tests on hand-built paths."""

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred
from repro.pins.checker import HOLDS, UNKNOWN, VIOLATED, ConstraintChecker
from repro.pins.constraints import Constraint, safepath
from repro.pins.spec import InversionSpec
from repro.pins.template import Solution
from repro.symexec.paths import Def, Guard, Path

SORTS = {"n": ast.Sort.INT, "y": ast.Sort.INT, "yp": ast.Sort.INT}
SPEC = InversionSpec(scalar_pairs=(("n", "yp"),))


def path_for(expr_text):
    """P: y := n + 1;  T: yp := [e1] with e1 -> expr."""
    items = (
        Def("y", 1, ast.add(ast.Var("n#0"), ast.n(1))),
        Def("yp", 1, ast.HoleExpr("e1", (("n", 0), ("y", 1), ("yp", 0)))),
    )
    return Path(items, (("n", 0), ("y", 1), ("yp", 1)))


def checker():
    return ConstraintChecker(SORTS, input_vars={"n": ast.Sort.INT})


def test_correct_inverse_holds():
    c = safepath(path_for(None), SPEC, "p")
    sol = Solution(exprs=(("e1", parse_expr("y - 1")),), preds=())
    assert checker().check(c, sol).status == HOLDS


def test_wrong_inverse_violated_with_counterexample():
    c = safepath(path_for(None), SPEC, "p")
    sol = Solution(exprs=(("e1", parse_expr("y + 1")),), preds=())
    outcome = checker().check(c, sol)
    assert outcome.status == VIOLATED
    assert outcome.counterexample is not None
    # The counterexample genuinely refutes: yp = n + 2 != n.
    n_val = outcome.counterexample.get("n", 0)
    assert n_val + 2 != n_val


def test_infeasible_path_vacuously_holds():
    items = (
        Guard(ast.lt(ast.Var("n#0"), ast.n(0))),
        Guard(ast.gt(ast.Var("n#0"), ast.n(0))),
        Def("yp", 1, ast.Var("n#0")),
    )
    c = safepath(Path(items, (("n", 0), ("yp", 1))), SPEC, "p")
    sol = Solution(exprs=(), preds=())
    outcome = checker().check(c, sol)
    assert outcome.status == HOLDS and outcome.vacuous


def test_screen_concrete_refutation():
    c = safepath(path_for(None), SPEC, "p")
    good = Solution(exprs=(("e1", parse_expr("y - 1")),), preds=())
    bad = Solution(exprs=(("e1", parse_expr("y + 1")),), preds=())
    chk = checker()
    assert chk.screen(c, good, {"n": 3})
    assert not chk.screen(c, bad, {"n": 3})


def test_screen_diverging_input_is_vacuous():
    items = (Guard(ast.eq(ast.Var("n#0"), ast.n(7))),) + path_for(None).items
    c = safepath(Path(items, (("n", 0), ("y", 1), ("yp", 1))), SPEC, "p")
    bad = Solution(exprs=(("e1", parse_expr("y + 1")),), preds=())
    assert checker().screen(c, bad, {"n": 3})  # does not follow the path
    assert not checker().screen(c, bad, {"n": 7})


def test_path_infeasible_api():
    items = (Guard(ast.HolePred("p1", (("n", 0),))),)
    path = Path(items, (("n", 0),))
    chk = checker()
    contradictory = Solution(
        exprs=(), preds=(("p1", (parse_pred("n < 0"), parse_pred("n > 0"))),))
    assert chk.path_infeasible(path, contradictory)
    satisfiable = Solution(exprs=(), preds=(("p1", (parse_pred("n > 0"),)),))
    assert not chk.path_infeasible(path, satisfiable)


def test_goal_constraint_check():
    # decrease-style: guard n > 0, body y := n - 1, rank = n must decrease.
    items = (
        Guard(ast.gt(ast.Var("n#0"), ast.n(0))),
        Def("n", 1, ast.sub(ast.Var("n#0"), ast.n(1))),
    )
    c = Constraint(kind="decrease", label="d", items=items,
                   final_vmap=(("n", 1),),
                   neg_goal=ast.ge(ast.HoleExpr("rank!L", (("n", 1),)),
                                   ast.HoleExpr("rank!L", (("n", 0),))))
    chk = checker()
    decreasing = Solution(exprs=(("rank!L", parse_expr("n")),), preds=())
    assert chk.check(c, decreasing).status == HOLDS
    constant = Solution(exprs=(("rank!L", parse_expr("0 - 1")),), preds=())
    assert chk.check(c, constant).status == VIOLATED
