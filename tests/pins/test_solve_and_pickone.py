"""solve() enumeration/blocking tests and pickOne heuristic tests."""

import random

from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.lang.transform import desugar_program
from repro.pins.checker import ConstraintChecker
from repro.pins.constraints import safepath
from repro.pins.pickone import infeasible_score, pick_one, pick_random
from repro.pins.solve import (
    Enumerator,
    SolveSession,
    SolveStats,
    _program_key,
    is_auxiliary_hole,
    solve,
)
from repro.pins.spec import InversionSpec
from repro.pins.template import HoleSpace, Solution
from repro.suite.sumi import benchmark as sumi_benchmark


def small_space():
    return HoleSpace(
        expr_holes=(("e1", (parse_expr("0"), parse_expr("1"))),),
        pred_holes=(("p1", (parse_pred("x < 1"), parse_pred("x > 1"))),),
        max_pred_conj=2,
    )


def test_enumerator_counts_and_decodes():
    enum = Enumerator(small_space())
    sat = enum.fresh_solver()
    seen = set()
    while sat.solve():
        sol = enum.decode(sat.model())
        seen.add(sol.key)
        sat.add_clause(enum.exact_block(sol))
    # 2 candidates x 4 subsets = 8 total assignments.
    assert len(seen) == 8


def test_exact_block_restricted():
    enum = Enumerator(small_space())
    sat = enum.fresh_solver()
    assert sat.solve()
    sol = enum.decode(sat.model())
    sat.add_clause(enum.exact_block(sol, relevant={"e1"}))
    remaining = set()
    while sat.solve():
        s2 = enum.decode(sat.model())
        remaining.add(s2.key)
        sat.add_clause(enum.exact_block(s2))
    # Blocking on e1 only removes all 4 subsets sharing that e1 choice.
    assert len(remaining) == 4
    assert all(dict(k[0])["e1"] != dict(sol.exprs)["e1"] for k in remaining)


def test_is_auxiliary_hole():
    assert is_auxiliary_hole("rank!loop1")
    assert is_auxiliary_hole("inv!loop2")
    assert not is_auxiliary_hole("e1")


def test_program_key_ignores_auxiliary():
    a = Solution(exprs=(("e1", parse_expr("0")),
                        ("rank!L", parse_expr("x - 0"))), preds=())
    b = Solution(exprs=(("e1", parse_expr("0")),
                        ("rank!L", parse_expr("x - 1"))), preds=())
    assert _program_key(a) == _program_key(b)


def test_solve_on_sumi_termination_only():
    bench = sumi_benchmark()
    from repro.pins.algorithm import build_template
    from repro.lang.transform import compose

    task = bench.task
    desugared = desugar_program(compose(task.program, task.inverse))
    template = build_template(task)
    checker = ConstraintChecker(desugared.decls)
    from repro.pins.termination import terminate

    session = SolveSession(template.space)
    stats = SolveStats()
    tests = [{"n": k} for k in range(4)]
    sols = solve(session, terminate(desugared.body, desugared.decls),
                 checker, tests, m=5, stats=stats)
    assert 1 <= len(sols) <= 5
    assert stats.candidates_tried >= len(sols)
    # Re-solving with the same session is cheap and consistent.
    sols2 = solve(session, terminate(desugared.body, desugared.decls),
                  checker, tests, m=5, stats=stats)
    assert len(sols2) == len(sols)


def test_pick_one_prefers_infeasible_solutions():
    bench = sumi_benchmark()
    from repro.lang.transform import compose

    task = bench.task
    desugared = desugar_program(compose(task.program, task.inverse))
    checker = ConstraintChecker(desugared.decls)
    good = Solution(
        exprs=(("e1", parse_expr("0")), ("e2", parse_expr("s")),
               ("e3", parse_expr("ip + 1")), ("e4", parse_expr("sp - ip"))),
        preds=(("p1", (parse_pred("sp > 0"),)),),
    )
    # A solution whose guard is contradictory makes explored paths that
    # enter the loop infeasible.
    bad = Solution(
        exprs=good.exprs,
        preds=(("p1", (parse_pred("sp > 0"), parse_pred("sp < 0"))),),
    )
    from repro.symexec.executor import SymbolicExecutor

    ex = SymbolicExecutor(desugared)
    rng = random.Random(0)
    explored = []
    avoid = set()
    for _ in range(3):
        path = ex.find_path(good.expr_map, good.pred_map, avoid, rng)
        avoid.add(path)
        explored.append(path)
    entering = [p for p in explored
                if infeasible_score(bad, [p], checker) == 1]
    if entering:  # at least one explored path entered the template loop
        assert infeasible_score(bad, explored, checker) > \
            infeasible_score(good, explored, checker)
        chosen = pick_one([good, bad], explored, checker, random.Random(0))
        assert chosen is bad


def test_pick_random_uniformity():
    sols = [Solution(exprs=(("e1", parse_expr(str(i))),), preds=())
            for i in range(3)]
    rng = random.Random(0)
    picks = {pick_random(sols, [], None, rng).key for _ in range(50)}
    assert len(picks) == 3
