"""End-to-end and unit tests for ``scripts/run_bench.py``.

The script is the bench harness of record (BENCH_pins.json), so its
CLI contract is pinned here: registry-driven program resolution,
bench-record shape, atomic JSON writes that survive a crashed run, and
exit-1 behavior of the digest/query regression gates.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.suite import BENCHMARK_MODULES, bench_set

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "run_bench.py"

# A deterministic, sub-second config for e2e subprocess runs.
FAST_ARGS = ["--m", "3", "--iters", "4", "--no-validate", "--budget", "smt=80"]


def load_run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, cwd=cwd, env=env, timeout=300)


# -- arg parsing / program resolution ---------------------------------------


def test_help_epilog_enumerates_registry():
    proc = run_cli("--help")
    assert proc.returncode == 0
    for name in BENCHMARK_MODULES:
        assert name in proc.stdout, f"--help epilog must list {name}"
    assert "--set" in proc.stdout and "--all" in proc.stdout


def test_unknown_program_errors_with_registry(tmp_path):
    proc = run_cli("sumj", cwd=tmp_path)
    assert proc.returncode == 2
    assert "sumj" in proc.stderr
    assert "sumi" in proc.stderr  # the registry listing names the fix


def test_no_programs_selected_errors(tmp_path):
    proc = run_cli(cwd=tmp_path)
    assert proc.returncode == 2
    assert "--all" in proc.stderr or "--set" in proc.stderr


def test_names_and_all_are_exclusive(tmp_path):
    proc = run_cli("sumi", "--all", cwd=tmp_path)
    assert proc.returncode == 2


def test_resolve_names_honors_sets(monkeypatch):
    mod = load_run_bench()
    ap = mod.build_parser()
    args = ap.parse_args(["--set", "fast"])
    assert mod.resolve_names(ap, args) == bench_set("fast")
    args = ap.parse_args(["--all"])
    assert mod.resolve_names(ap, args) == list(BENCHMARK_MODULES)
    args = ap.parse_args(["sumi", "runlength"])
    assert mod.resolve_names(ap, args) == ["sumi", "runlength"]


# -- bench JSON load/save ----------------------------------------------------


def test_load_bench_json_tolerates_garbage(tmp_path):
    mod = load_run_bench()
    path = tmp_path / "bench.json"
    assert mod.load_bench_json(str(path)) == {"labels": {}}
    path.write_text(json.dumps(["not", "a", "dict"]))
    assert mod.load_bench_json(str(path)) == {"labels": {}}
    path.write_text(json.dumps({"labels": {"x": {"benchmarks": {}}}}))
    assert "x" in mod.load_bench_json(str(path))["labels"]


def test_save_bench_json_is_atomic_under_crash(tmp_path):
    """A crash mid-write must leave the previous JSON intact (tmp file
    left behind, old contents untouched)."""
    mod = load_run_bench()
    path = tmp_path / "bench.json"
    mod.save_bench_json(str(path), {"labels": {"good": {"benchmarks": {}}}})
    before = path.read_text()
    # json.dump raises mid-write on unserializable data — the tmp file
    # is abandoned and os.replace never runs.
    with pytest.raises(TypeError):
        mod.save_bench_json(str(path), {"labels": {"bad": object()}})
    assert path.read_text() == before
    leftovers = list(tmp_path.glob("bench.json.tmp-*"))
    assert leftovers, "crashed write should leave its tmp file behind"
    # A stale tmp file from the crashed run doesn't confuse a reload.
    assert mod.load_bench_json(str(path))["labels"] == {"good": {"benchmarks": {}}}


# -- e2e: label recording + record shape ------------------------------------

RECORD_KEYS = {"wall_time_s", "status", "iterations", "paths", "smt_queries",
               "cache_hits", "cache_misses", "cache_hit_rate", "solutions",
               "inverse_digest", "budget"}


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One real CLI run on sumi, recorded under label 'ref'."""
    tmp = tmp_path_factory.mktemp("bench")
    bench_json = tmp / "bench.json"
    proc = run_cli("sumi", *FAST_ARGS,
                   "--bench-json", str(bench_json), "--bench-label", "ref",
                   cwd=tmp)
    assert proc.returncode == 0, proc.stderr + proc.stdout
    return tmp, bench_json, json.loads(bench_json.read_text())


def test_label_recording_shape(recorded):
    _tmp, _path, data = recorded
    entry = data["labels"]["ref"]
    assert entry["seed"] == 1
    record = entry["benchmarks"]["sumi"]
    assert RECORD_KEYS <= set(record)
    assert record["budget"] == "smt=80"
    assert record["smt_queries"] <= 80
    assert len(record["inverse_digest"]) == 64
    assert record["status"] in {"stabilized", "no_solution", "paths_exhausted",
                                "max_iterations", "budget_exhausted"}


def test_check_inverses_match_exits_0(recorded):
    tmp, bench_json, _data = recorded
    proc = run_cli("sumi", *FAST_ARGS,
                   "--bench-json", str(bench_json), "--bench-label", "again",
                   "--check-inverses-against", "ref", cwd=tmp)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "inverses identical to 'ref'" in proc.stdout


def test_check_inverses_drift_exits_1(recorded, tmp_path):
    tmp, bench_json, data = recorded
    drifted = json.loads(json.dumps(data))
    drifted["labels"]["ref"]["benchmarks"]["sumi"]["inverse_digest"] = "0" * 64
    bad = tmp_path / "drifted.json"
    bad.write_text(json.dumps(drifted))
    proc = run_cli("sumi", *FAST_ARGS,
                   "--bench-json", str(bad), "--bench-label", "check",
                   "--check-inverses-against", "ref", cwd=tmp)
    assert proc.returncode == 1
    assert "inverse digest differs" in proc.stdout


def test_check_queries_regression_exits_1(recorded, tmp_path):
    tmp, _bench_json, data = recorded
    tightened = json.loads(json.dumps(data))
    tightened["labels"]["ref"]["benchmarks"]["sumi"]["smt_queries"] = 1
    bad = tmp_path / "tight.json"
    bad.write_text(json.dumps(tightened))
    proc = run_cli("sumi", *FAST_ARGS,
                   "--bench-json", str(bad), "--bench-label", "check",
                   "--check-queries-against", "ref", cwd=tmp)
    assert proc.returncode == 1
    assert "SMT query regression" in proc.stdout


def test_check_against_missing_label_exits_1(recorded, tmp_path):
    tmp, bench_json, _data = recorded
    proc = run_cli("sumi", *FAST_ARGS,
                   "--bench-json", str(bench_json), "--bench-label", "check",
                   "--check-inverses-against", "no-such-label", cwd=tmp)
    assert proc.returncode == 1
    assert "cannot check inverses" in proc.stdout


# -- gate unit behavior: profile-driven slack and digest stability -----------


def test_digest_gate_respects_digest_stable_profile(monkeypatch, tmp_path, capsys):
    """digest_stable=False programs report drift without failing, unless
    --strict-digests."""
    mod = load_run_bench()
    bench_json = tmp_path / "bench.json"
    mod.save_bench_json(str(bench_json), {"labels": {"ref": {
        "benchmarks": {"sumi": {"inverse_digest": "0" * 64,
                                "smt_queries": 10_000}}}}})
    base = ["run_bench.py", "sumi", "--m", "3", "--iters", "4",
            "--no-validate", "--budget", "smt=80",
            "--bench-json", str(bench_json), "--bench-label", "check",
            "--check-inverses-against", "ref"]

    from repro.suite.profiles import BenchProfile
    monkeypatch.setattr(mod, "bench_profile",
                        lambda name: BenchProfile(digest_stable=False))
    monkeypatch.setattr(sys, "argv", base)
    assert mod.main() == 0
    assert "not gating" in capsys.readouterr().out

    monkeypatch.setattr(sys, "argv", base + ["--strict-digests"])
    assert mod.main() == 1


def test_query_gate_adds_profile_slack(monkeypatch, tmp_path, capsys):
    mod = load_run_bench()
    bench_json = tmp_path / "bench.json"
    # Reference of 60 queries: a run needing <= 80 fails at slack 0 but
    # passes once the profile contributes 100% slack (limit 120).
    mod.save_bench_json(str(bench_json), {"labels": {"ref": {
        "benchmarks": {"sumi": {"inverse_digest": "x",
                                "smt_queries": 60}}}}})
    base = ["run_bench.py", "sumi", "--m", "3", "--iters", "4",
            "--no-validate", "--budget", "smt=80",
            "--bench-json", str(bench_json), "--bench-label", "check",
            "--check-queries-against", "ref"]

    from repro.suite.profiles import BenchProfile
    monkeypatch.setattr(sys, "argv", base)
    monkeypatch.setattr(mod, "bench_profile",
                        lambda name: BenchProfile(queries_slack=0.0))
    code_no_slack = mod.main()
    out_no_slack = capsys.readouterr().out
    monkeypatch.setattr(mod, "bench_profile",
                        lambda name: BenchProfile(queries_slack=1.0))
    code_slack = mod.main()
    out_slack = capsys.readouterr().out
    # The run is deterministic, so the two invocations saw the same
    # query count; only the slack differed.
    if code_no_slack == 1:
        assert "SMT query regression" in out_no_slack
        assert code_slack == 0, out_slack
    else:
        # The run came in under 60 queries; the slack variant must agree.
        assert code_slack == 0
