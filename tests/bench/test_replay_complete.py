"""Counterexamples must replay: the region analysis' replay contract.

Every VIOLATED verdict the checker keeps is backed by a counterexample
that replays concretely through the interpreter.  When a SAT model's
extern function table diverges from the real semantics the replay fails;
with regions on such counterexamples are downgraded to UNKNOWN instead
of blocking good candidates with garbage.  This smoke asserts the
contract across the whole 16-program suite — zero kept-but-unreplayable
counterexamples — and that regions leave the synthesis trajectory (and
therefore the recorded digests) untouched.
"""

from __future__ import annotations

import pytest

from repro.pins import PinsConfig, run_pins
from repro.suite import BENCHMARK_MODULES, get_benchmark

SMOKE_BUDGET = "smt=60;paths=6;wall=10"


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_no_kept_counterexample_fails_replay(name):
    bench = get_benchmark(name)
    config = PinsConfig(m=3, max_iterations=3, seed=1, budget=SMOKE_BUDGET,
                        regions=True)
    result = run_pins(bench.task, config)
    assert result.metrics.counter("analysis.regions.replay_failed") == 0, (
        f"{name}: a VIOLATED counterexample did not replay concretely")


@pytest.mark.parametrize("name", ["sumi", "vector_shift"])
def test_regions_leave_the_trajectory_unchanged(name):
    bench = get_benchmark(name)
    on = run_pins(bench.task, PinsConfig(m=3, max_iterations=3, seed=1,
                                         budget=SMOKE_BUDGET, regions=True))
    off = run_pins(bench.task, PinsConfig(m=3, max_iterations=3, seed=1,
                                          budget=SMOKE_BUDGET, regions=False))
    assert on.status == off.status
    assert on.inverse_digest() == off.inverse_digest()
