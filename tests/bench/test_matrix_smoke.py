"""Full-suite synthesis smoke: every registered program, tightly budgeted.

The Table-2 scale-out contract: under a tight :class:`repro.resil.Budget`
every one of the 16 registered programs must come back with a clean
terminal status — ``run_pins`` never lets an exception escape, and the
result object is always well-formed (digest computable, stats coherent).
"""

from __future__ import annotations

import pytest

from repro.pins import PinsConfig, run_pins
from repro.suite import BENCHMARK_MODULES, bench_profile, get_benchmark

TERMINAL_STATUSES = {
    "stabilized", "no_solution", "paths_exhausted", "max_iterations",
    "budget_exhausted",
}

SMOKE_BUDGET = "smt=60;paths=6;wall=10"


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_program_reaches_terminal_status_under_tight_budget(name):
    bench = get_benchmark(name)
    config = PinsConfig(m=3, max_iterations=3, seed=1, budget=SMOKE_BUDGET)
    result = run_pins(bench.task, config)
    assert result.status in TERMINAL_STATUSES, (
        f"{name}: unexpected status {result.status!r}")
    # The result must be renderable into a bench record: digest over the
    # (possibly empty) solution set, non-negative counters.
    digest = result.inverse_digest()
    assert len(digest) == 64
    assert result.stats.iterations >= 0
    assert result.stats.paths_explored >= 0
    assert len(result.inverse_programs()) == len(result.solutions)
    if result.status == "budget_exhausted":
        assert result.stats.budget_exhausted


def test_every_program_has_a_bench_profile_budget():
    """The bench harness relies on profiles to keep slow programs
    terminating; every registered program must carry one."""
    for name in BENCHMARK_MODULES:
        profile = bench_profile(name)
        assert profile.budget is not None, name
