"""Suite-wide tests: registry, ground-truth oracles, metadata sanity."""

import pytest

from repro.lang import ast
from repro.suite import (
    BENCH_SETS,
    BENCHMARK_MODULES,
    EXTENSION_BENCHMARKS,
    PAPER_BENCHMARKS,
    all_benchmarks,
    bench_profile,
    bench_set,
    get_benchmark,
)
from repro.validate.roundtrip import random_pool, validate_inverse


def test_registry_has_sixteen_benchmarks():
    assert len(PAPER_BENCHMARKS) == 14  # the paper's Table 1
    assert len(BENCHMARK_MODULES) == 16  # + two extension benchmarks
    assert BENCHMARK_MODULES == PAPER_BENCHMARKS + EXTENSION_BENCHMARKS
    benchmarks = all_benchmarks()
    assert set(benchmarks) == set(BENCHMARK_MODULES)


def test_get_benchmark_typo_lists_registry():
    with pytest.raises(KeyError) as exc:
        get_benchmark("sumj")
    message = str(exc.value)
    assert "sumj" in message
    for name in BENCHMARK_MODULES:
        assert name in message


def test_groups_match_paper():
    groups = {b.group for b in all_benchmarks().values()}
    assert groups == {"compressor", "encoder", "arithmetic"}
    compressors = [n for n, b in all_benchmarks().items()
                   if b.group == "compressor" and b.in_paper]
    assert set(compressors) == {"inplace_rl", "runlength", "lz77", "lzw"}


def test_extension_benchmarks_marked():
    for name in EXTENSION_BENCHMARKS:
        assert not get_benchmark(name).in_paper
    for name in PAPER_BENCHMARKS:
        assert get_benchmark(name).in_paper


def test_bench_sets_partition_registry():
    fast, slow = bench_set("fast"), bench_set("slow")
    assert set(fast) | set(slow) == set(BENCHMARK_MODULES)
    assert not set(fast) & set(slow)
    assert bench_set("all") == list(BENCHMARK_MODULES)
    # registry order is preserved within each set
    assert fast == [n for n in BENCHMARK_MODULES if n in set(fast)]
    with pytest.raises(KeyError):
        bench_set("medium")
    assert set(BENCH_SETS) == {"fast", "slow", "all"}


def test_every_benchmark_has_a_profile():
    from repro.suite.profiles import PROFILES

    assert set(PROFILES) == set(BENCHMARK_MODULES)
    for name in BENCHMARK_MODULES:
        profile = bench_profile(name)
        assert profile.set in ("fast", "slow")
        assert profile.budget, f"{name}: bench runs must be budgeted"
        assert profile.queries_slack >= 0.0


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_ground_truth_round_trips(name):
    bench = get_benchmark(name)
    task = bench.task
    spec = task.derived_spec({**task.program.decls, **task.inverse.decls})
    pool = list(task.initial_inputs)
    if task.input_gen is not None:
        pool += random_pool(task.input_gen, 15, seed=5)
    report = validate_inverse(task.program, bench.ground_truth, spec, pool,
                              task.externs, precondition=task.precondition)
    assert report.ok, f"{name} ground truth failed on {report.failures[:2]}"


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_template_holes_have_candidates(name):
    from repro.pins.algorithm import build_template

    bench = get_benchmark(name)
    template = build_template(bench.task)
    for hole, cands in template.space.expr_holes:
        assert cands, f"{name}: hole {hole} has no candidates"
    for hole, cands in template.space.pred_holes:
        assert cands, f"{name}: hole {hole} has no candidates"


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_ground_truth_is_inside_the_space(name):
    """Every ground-truth expression/guard must be constructible from the
    candidate sets (otherwise the benchmark is unwinnable by design)."""
    from repro.pins.algorithm import build_template

    bench = get_benchmark(name)
    template = build_template(bench.task)
    # Sanity proxy: the template instantiated from hole candidates covers
    # the same assigned variables as the ground truth.
    gt_targets = ast.assigned_vars(bench.ground_truth.body)
    tpl_targets = ast.assigned_vars(bench.task.inverse.body)
    assert gt_targets == tpl_targets


@pytest.mark.parametrize("name", BENCHMARK_MODULES)
def test_inputs_are_generatable(name):
    import random

    bench = get_benchmark(name)
    if bench.task.input_gen is None:
        pytest.skip("no generator")
    rng = random.Random(0)
    for _ in range(5):
        inputs = bench.task.input_gen(rng)
        assert isinstance(inputs, dict) and inputs
        if bench.task.precondition is not None:
            from repro.concrete.values import coerce_input
            from repro.lang.ast import Sort

            coerced = {
                k: coerce_input(v, bench.task.program.decls.get(k, Sort.INT))
                for k, v in inputs.items()
            }
            assert bench.task.precondition(coerced)


def test_paper_numbers_recorded():
    for name, bench in all_benchmarks().items():
        if not bench.in_paper:
            continue  # extension benchmarks have no published row
        assert bench.paper.loc > 0, name
        assert bench.paper.iterations > 0, name
