"""Experiment-driver tests (table rendering and row generation)."""

import pytest

from repro.experiments.tables import (
    BENCH_MATRIX_HEADERS,
    TABLE1_HEADERS,
    bench_matrix_rows,
    render,
    render_bench_matrix,
    table1,
    table1_row,
)
from repro.suite import BENCHMARK_MODULES, get_benchmark


def test_render_alignment():
    text = render(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")


def test_table1_rows_cover_all_benchmarks():
    rows = table1()
    assert len(rows) == len(BENCHMARK_MODULES)
    assert [r[0] for r in rows] == list(BENCHMARK_MODULES)


def test_table1_row_matches_benchmark_metadata():
    bench = get_benchmark("sumi")
    row = table1_row(bench)
    assert row[0] == "sumi"
    assert row[1] == bench.loc
    subset = len(bench.task.phi_e) + len(bench.task.phi_p)
    assert row[5] == subset


def test_mined_sizes_in_paper_band():
    for row in table1():
        mined = row[3]
        assert 3 <= mined <= 60, row[0]


# -- recorded bench-matrix rendering (python -m repro.experiments table2) ----


def _record(status="stabilized", queries=93, digest="e087b5ac" * 8):
    return {"status": status, "paths": 7, "iterations": 8,
            "smt_queries": queries, "cache_hit_rate": 0.5,
            "wall_time_s": 1.2345, "solutions": 2, "inverse_digest": digest}


def _data(names):
    return {"labels": {"full-suite": {
        "benchmarks": {name: _record() for name in names}}}}


def test_bench_matrix_rows_registry_order_and_shape():
    data = _data(["vector_shift", "sumi", "zz_unregistered"])
    rows = bench_matrix_rows(data, "full-suite")
    # registry order first, unknown names appended
    assert [r[0] for r in rows] == ["sumi", "vector_shift", "zz_unregistered"]
    for row in rows:
        assert len(row) == len(BENCH_MATRIX_HEADERS)
    sumi_row = rows[0]
    assert sumi_row[1] == "stabilized"
    assert sumi_row[8] == ("e087b5ac" * 8)[:12]
    # sumi has a published Table-2 row; the unregistered name does not
    assert sumi_row[9] == get_benchmark("sumi").paper.iterations
    assert rows[2][9] == "-"


def test_bench_matrix_extension_benchmarks_have_no_paper_column():
    rows = bench_matrix_rows(_data(["delta_encode"]), "full-suite")
    assert rows[0][9] == "-" and rows[0][10] == "-"


def test_bench_matrix_unknown_label_lists_recorded_ones():
    with pytest.raises(KeyError) as exc:
        bench_matrix_rows(_data(["sumi"]), "nope")
    assert "full-suite" in str(exc.value)


def test_render_bench_matrix_is_aligned_text():
    text = render_bench_matrix(_data(["sumi", "runlength"]), "full-suite")
    lines = text.splitlines()
    assert lines[0].split()[0] == "benchmark"
    assert len(lines) == 4  # header, rule, two rows


def test_experiments_main_renders_recorded_matrix(tmp_path, capsys):
    import json

    from repro.experiments.__main__ import main as experiments_main

    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_data(["sumi", "delta_encode"])))
    assert experiments_main(["table2", "--bench-json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sumi" in out and "delta_encode" in out and "benchmark" in out

    assert experiments_main(["table2", "--bench-json", str(path),
                             "--label", "nope"]) == 1
    assert experiments_main(["table2", "--bench-json",
                             str(tmp_path / "missing.json")]) == 1
