"""Experiment-driver tests (table rendering and row generation)."""

from repro.experiments.tables import (
    TABLE1_HEADERS,
    render,
    table1,
    table1_row,
)
from repro.suite import BENCHMARK_MODULES, get_benchmark


def test_render_alignment():
    text = render(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")


def test_table1_rows_cover_all_benchmarks():
    rows = table1()
    assert len(rows) == len(BENCHMARK_MODULES)
    assert [r[0] for r in rows] == list(BENCHMARK_MODULES)


def test_table1_row_matches_benchmark_metadata():
    bench = get_benchmark("sumi")
    row = table1_row(bench)
    assert row[0] == "sumi"
    assert row[1] == bench.loc
    subset = len(bench.task.phi_e) + len(bench.task.phi_p)
    assert row[5] == subset


def test_mined_sizes_in_paper_band():
    for row in table1():
        mined = row[3]
        assert 3 <= mined <= 60, row[0]
