"""Template-mining tests: harvest, projections, renaming, skeletons."""

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_pred, parse_program
from repro.mining.builder import SkeletonOptions, build_skeleton
from repro.mining.miner import harvest, mine, positive_counters, read_retarget
from repro.mining.projections import (
    INVERSION_PROJECTIONS,
    iterator_positive_projection,
    out_scalar_projection,
)
from repro.suite.inplace_rl import PROGRAM as RL_PROGRAM

SIMPLE = parse_program("""
program t [int n; int s; int i] {
  in(n);
  assume(n >= 0);
  s, i := 0, 0;
  while (i < n) {
    i := i + 1;
    s := s + i;
  }
  out(s);
}
""")


def test_harvest_collects_rhs_and_guards():
    exprs, preds = harvest(SIMPLE)
    assert parse_expr("i + 1") in exprs
    assert parse_expr("s + i") in exprs
    assert parse_pred("i < n") in preds
    assert parse_pred("n >= 0") in preds


def test_projection_addition_inversion():
    proj = {p.name: p for p in INVERSION_PROJECTIONS}
    out = proj["addition-inversion"](parse_expr("s + i"))
    assert out == (parse_expr("s - i"),)
    assert proj["addition-inversion"](parse_expr("s - i")) == ()


def test_projection_copy_inversion():
    proj = {p.name: p for p in INVERSION_PROJECTIONS}
    out = proj["copy-inversion"](parse_expr("upd(A, m, sel(B, i))"))
    assert out == (parse_expr("upd(B, i, sel(A, m))"),)


def test_projection_array_read():
    proj = {p.name: p for p in INVERSION_PROJECTIONS}
    out = proj["array-read"](parse_pred("sel(A, i) = sel(A, i + 1)"))
    assert parse_expr("sel(A, i)") in out


def test_out_scalar_and_iterator_projectors():
    assert out_scalar_projection("m", lambda s: s + "p") == parse_pred("mp < m")
    assert iterator_positive_projection("r", lambda s: s + "p") == parse_pred("rp > 0")


def test_positive_counters():
    assert positive_counters(RL_PROGRAM) == ["r"]


def test_mine_deletes_unavailable_references():
    mined = mine(SIMPLE)
    # n is an input but not an output: nothing mined may mention np.
    for e in mined.exprs:
        assert "np" not in ast.expr_vars(e)
    for p in mined.preds:
        assert "np" not in ast.expr_vars(p)


def test_mine_runlength_contains_paper_candidates():
    mined = mine(RL_PROGRAM)
    expr_texts = {str(e) for e in mined.exprs}
    pred_texts = {str(p) for p in mined.preds}
    assert "(rp + 1)" in expr_texts
    assert "(rp - 1)" in expr_texts  # increment inversion
    assert "mp < m" in pred_texts  # out projector
    assert "rp > 0" in pred_texts  # iterator projector
    assert mined.size >= 10


def test_read_retarget():
    exprs = (parse_expr("upd(Ap, ip, sel(Ap, mp))"),)
    fixed = read_retarget(exprs, "Ap", "A")
    assert fixed == (parse_expr("upd(Ap, ip, sel(A, mp))"),)


def test_build_skeleton_structure():
    skeleton = build_skeleton(SIMPLE)
    holes = ast.stmt_unknowns(skeleton.body)
    assert holes  # guards and RHS became unknowns
    loops = [s for s in ast.walk_stmts(skeleton.body) if isinstance(s, ast.GWhile)]
    assert len(loops) == 1
    assert isinstance(loops[0].cond, ast.UnknownPred)
    assert skeleton.outputs == ("np",)  # primed inputs of P


def test_build_skeleton_reverse_and_drop():
    options = SkeletonOptions(drop_assignments_to={"s"})
    skeleton = build_skeleton(SIMPLE, options)
    targets = set()
    for s in ast.walk_stmts(skeleton.body):
        if isinstance(s, ast.Assign):
            targets.update(s.targets)
    assert "sp" not in targets
    assert "ip" in targets
