"""Unit tests for the SMT query-result cache (repro.perf.cache)."""

import json
import os

from repro.perf import (
    QueryCache,
    extract_witness,
    query_cache_for,
    rebuild_model,
    resolve_cache_spec,
)
from repro.perf.cache import ENV_QUERY_CACHE
from repro.smt import (
    ARR,
    INT,
    SAT,
    UNSAT,
    Solver,
    mk_add,
    mk_eq,
    mk_int,
    mk_le,
    mk_lt,
    mk_select,
    mk_store,
    mk_var,
    query_fingerprint,
)
from repro.smt.models import Model, satisfies

x = mk_var("x", INT)
y = mk_var("y", INT)
A = mk_var("A", ARR)


def solve_with_cache(formulas, cache):
    solver = Solver(query_cache=cache)
    solver.add(*formulas)
    status = solver.check()
    return status, (solver.model() if status == SAT else None)


# -- basic memo behavior ------------------------------------------------------


def test_memory_hit_serves_same_answer():
    cache = QueryCache()
    formulas = [mk_lt(x, y), mk_le(y, mk_add(x, mk_int(1)))]
    s1, m1 = solve_with_cache(formulas, cache)
    s2, m2 = solve_with_cache(formulas, cache)
    assert s1 == s2 == SAT
    assert cache.hits == 1 and cache.misses == 1
    assert m2.eval_int(y) == m2.eval_int(x) + 1


def test_unsat_is_cached():
    cache = QueryCache()
    formulas = [mk_lt(x, y), mk_lt(y, x)]
    assert solve_with_cache(formulas, cache)[0] == UNSAT
    assert solve_with_cache(formulas, cache)[0] == UNSAT
    assert cache.hits == 1


def test_unknown_is_never_cached():
    cache = QueryCache()
    cache.store("some-key", "unknown", None, [])
    assert cache.lookup("some-key", []) is None
    assert cache.stores == 0


def test_different_constants_different_fingerprints():
    f1 = mk_eq(x, mk_int(1))
    f2 = mk_eq(x, mk_int(2))
    assert query_fingerprint([f1]) != query_fingerprint([f2])


def test_commutative_orientation_shares_fingerprint():
    # mk_eq orients by term id (construction history); the fingerprint
    # must not depend on that, or warm runs diverge from cold ones.
    lhs = mk_add(x, mk_int(1))
    assert query_fingerprint([mk_eq(lhs, y)]) == query_fingerprint([mk_eq(y, lhs)])


# -- collision safety ---------------------------------------------------------


def test_key_collision_degrades_to_miss_not_wrong_answer():
    # Force a collision by storing a sat model under a key that a
    # *different* (unsatisfiable-under-that-model) query then looks up.
    cache = QueryCache()
    sat_formulas = [mk_eq(x, mk_int(1))]
    status, model = solve_with_cache(sat_formulas, cache)
    assert status == SAT
    key = "forced-collision-key"
    cache.store(key, SAT, model, sat_formulas)
    other = [mk_eq(x, mk_int(2))]
    assert cache.lookup(key, other) is None  # model fails re-verification
    # And the poisoned entry was dropped so we stop paying the check.
    assert key not in cache._mem


def test_unverifiable_sat_model_is_not_served():
    cache = QueryCache()
    model = Model()  # knows nothing; satisfies() must reject it
    cache.store("k", SAT, model, [mk_eq(x, mk_int(5))])
    assert cache.lookup("k", [mk_eq(x, mk_int(5))]) is None


# -- eviction -----------------------------------------------------------------


def test_memory_eviction_is_fifo_and_counted():
    cache = QueryCache(max_memory_entries=2)
    cache.store("k1", UNSAT, None, [])
    cache.store("k2", UNSAT, None, [])
    cache.store("k3", UNSAT, None, [])
    assert cache.evictions == 1
    assert cache.lookup("k1", []) is None
    assert cache.lookup("k2", []) == (UNSAT, None)
    assert cache.lookup("k3", []) == (UNSAT, None)


# -- witness round-trips ------------------------------------------------------


def test_witness_roundtrip_int_and_array():
    formulas = [mk_eq(x, mk_int(7)),
                mk_eq(mk_select(A, mk_int(0)), mk_int(3))]
    status, model = solve_with_cache(formulas, QueryCache())
    assert status == SAT
    witness = extract_witness(model)
    assert witness is not None
    rebuilt = rebuild_model(json.loads(json.dumps(witness)), formulas)
    assert satisfies(rebuilt, formulas)
    assert rebuilt.eval_int(x) == 7


def test_witness_rejects_class_values():
    model = Model()
    model.class_values[x] = 42
    assert extract_witness(model) is None


def test_partial_model_store_equality_verifies():
    # A written-but-never-read array variable gets no contents in the
    # solver model; the cache's completion-based check must still accept
    # the witness (strict dict equality would spuriously miss).
    B = mk_var("B", ARR)
    formulas = [mk_eq(B, mk_store(A, mk_int(0), x)),
                mk_eq(mk_select(A, mk_int(1)), mk_int(9))]
    cache = QueryCache()
    s1, _ = solve_with_cache(formulas, cache)
    s2, _ = solve_with_cache(formulas, cache)
    assert s1 == s2 == SAT
    assert cache.hits == 1


# -- disk tier ----------------------------------------------------------------


def test_disk_roundtrip_across_instances(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    formulas = [mk_eq(x, mk_int(7)), mk_lt(mk_int(0), y)]
    c1 = QueryCache(path)
    assert solve_with_cache(formulas, c1)[0] == SAT
    unsat_formulas = [mk_lt(x, y), mk_lt(y, x)]
    assert solve_with_cache(unsat_formulas, c1)[0] == UNSAT
    c1.close()

    c2 = QueryCache(path)
    s, model = solve_with_cache(formulas, c2)
    assert s == SAT and model.eval_int(x) == 7
    assert solve_with_cache(unsat_formulas, c2)[0] == UNSAT
    assert c2.hits == 2 and c2.misses == 0
    c2.close()


def test_concurrent_writers_use_distinct_shards(tmp_path):
    # Two caches on the same path (two "processes") must not interleave
    # writes in one file; each appends to its own pid shard and a later
    # reader merges both.  Same-pid instances share a shard file, so
    # simulate the second writer with a distinct shard name.
    path = str(tmp_path / "cache.jsonl")
    c1 = QueryCache(path)
    c1.store("k1", UNSAT, None, [])
    c1.close()
    with open(path + ".shard-99999", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"key": "k2", "status": UNSAT}) + "\n")

    reader = QueryCache(path)
    assert reader.lookup("k1", []) == (UNSAT, None)
    assert reader.lookup("k2", []) == (UNSAT, None)


def test_refresh_picks_up_new_shard_entries(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = QueryCache(path)
    assert cache.lookup("late", []) is None
    with open(path + ".shard-12345", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"key": "late", "status": UNSAT}) + "\n")
    cache.refresh()
    assert cache.lookup("late", []) == (UNSAT, None)


def test_compact_merges_shards_atomically(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = QueryCache(path)
    cache.store("k1", UNSAT, None, [])
    with open(path + ".shard-424242", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"key": "k2", "status": UNSAT}) + "\n")
    cache.compact()
    assert not cache._shard_paths()
    assert os.path.exists(path)
    fresh = QueryCache(path)
    assert fresh.lookup("k1", []) == (UNSAT, None)
    assert fresh.lookup("k2", []) == (UNSAT, None)


def test_torn_final_line_is_tolerated(tmp_path):
    # A writer that died mid-append leaves garbage only on the LAST
    # line; everything before it is intact and stays usable.
    path = str(tmp_path / "cache.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"key": "good", "status": "unsat"}\n')
        fh.write('{"key": "bad-status", "status": "unknown"}\n')
        fh.write("{torn-write")
    cache = QueryCache(path)
    assert cache.lookup("good", []) == (UNSAT, None)
    assert cache.lookup("bad-status", []) is None  # unknown never served
    assert cache.quarantined == 0
    assert os.path.exists(path)


def test_mid_file_garbage_quarantines_file(tmp_path):
    # Garbage *followed by* more data cannot be a torn append — the
    # whole file is renamed .bad and its entries recomputed on demand.
    path = str(tmp_path / "cache.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"key": "good", "status": "unsat"}\n')
        fh.write("{torn-write\n")
        fh.write('{"key": "later", "status": "unsat"}\n')
    cache = QueryCache(path)
    assert cache.lookup("good", []) is None
    assert cache.quarantined == 1
    assert not os.path.exists(path)
    assert os.path.exists(path + ".bad")
    # The quarantined name is invisible to shard globbing and reloads.
    cache.refresh()
    assert cache.quarantined == 1


# -- spec resolution ----------------------------------------------------------


def test_resolve_cache_spec_precedence(monkeypatch):
    monkeypatch.delenv(ENV_QUERY_CACHE, raising=False)
    assert resolve_cache_spec(None) is None
    assert resolve_cache_spec("mem") == "mem"
    monkeypatch.setenv(ENV_QUERY_CACHE, "/tmp/from-env")
    assert resolve_cache_spec(None) == "/tmp/from-env"
    assert resolve_cache_spec("explicit") == "explicit"  # config wins
    monkeypatch.setenv(ENV_QUERY_CACHE, "0")
    assert resolve_cache_spec(None) is None


def test_query_cache_for_memory_and_dir(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_QUERY_CACHE, raising=False)
    assert query_cache_for(None) is None
    mem = query_cache_for("mem")
    assert mem is not None and mem.path is None
    disk = query_cache_for(str(tmp_path) + os.sep, slug="bench")
    assert disk.path == str(tmp_path / "bench.jsonl")
