"""Worker-pool behavior: jobs resolution, serial fallback, forked equality."""

import os

import pytest

from repro.perf import PerfContext, WorkerPool, resolve_jobs
from repro.perf.pool import ENV_JOBS, ENV_JOBS_FORCE, _run_task
from repro.pins.checker import ConstraintChecker


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv(ENV_JOBS, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == 1
    monkeypatch.setenv(ENV_JOBS, "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2  # config wins over env
    monkeypatch.setenv(ENV_JOBS, "junk")
    assert resolve_jobs(None) == 1


def test_jobs_one_is_serial(monkeypatch):
    monkeypatch.delenv(ENV_JOBS_FORCE, raising=False)
    pool = WorkerPool(1, PerfContext())
    assert not pool.parallel
    pool.close()


def test_jobs_clamped_to_cpu_count(monkeypatch):
    monkeypatch.delenv(ENV_JOBS_FORCE, raising=False)
    pool = WorkerPool(4, PerfContext())
    try:
        cpus = os.cpu_count() or 1
        assert pool.parallel == (cpus > 1)
    finally:
        pool.close()


def test_serial_fallback_runs_tasks_inline():
    class FakeChecker:
        def check(self, constraint, solution):
            return (constraint, solution)

    ctx = PerfContext(checker=FakeChecker(), constraints=("c0", "c1"))
    pool = WorkerPool(1, PerfContext())  # serial
    # Serial map_ordered still dispatches through _run_task with ctx.
    pool.ctx = ctx
    out = pool.map_ordered([("constraint", 1, "sol")])
    assert out == [("c1", "sol")]
    pool.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_forced_fork_matches_serial(monkeypatch):
    """REPRO_JOBS_FORCE=1 exercises real forked workers even on one CPU;
    results must equal the serial fold exactly and in order."""
    from repro.lang.transform import compose, desugar_program
    from repro.pins.algorithm import build_template
    from repro.pins.solve import SolveSession, SolveStats, solve
    from repro.pins.termination import terminate
    from repro.suite.sumi import benchmark as sumi_benchmark

    task = sumi_benchmark().task
    desugared = desugar_program(compose(task.program, task.inverse))
    checker = ConstraintChecker(desugared.decls)
    constraints = list(terminate(desugared.body, desugared.decls))
    template = build_template(task)
    session = SolveSession(template.space)
    solutions = solve(session, constraints, checker,
                      [{"n": k} for k in range(4)], m=2, stats=SolveStats())
    assert constraints and solutions

    tasks = [("constraint", i, sol)
             for sol in solutions
             for i in range(min(len(constraints), 3))]
    ctx = PerfContext(checker=checker, constraints=constraints)

    serial_pool = WorkerPool(1, ctx)
    serial = serial_pool.map_ordered(tasks)
    serial_pool.close()

    monkeypatch.setenv(ENV_JOBS_FORCE, "1")
    forked_pool = WorkerPool(2, ctx)
    assert forked_pool.parallel
    try:
        forked = forked_pool.map_ordered(tasks)
    finally:
        forked_pool.close()
    assert forked == serial


def test_unknown_task_kind_raises():
    import repro.perf.pool as pool_mod

    pool_mod._CTX = PerfContext()
    with pytest.raises(ValueError):
        _run_task(("no-such-kind",))


# -- persistent fleet ---------------------------------------------------------


def test_resolve_workers_precedence(monkeypatch):
    from repro.perf.pool import ENV_WORKERS, resolve_workers

    monkeypatch.delenv(ENV_WORKERS, raising=False)
    assert resolve_workers(None) == "fork"
    assert resolve_workers("persistent") == "persistent"
    assert resolve_workers("junk") == "fork"
    monkeypatch.setenv(ENV_WORKERS, "persistent")
    assert resolve_workers(None) == "persistent"
    assert resolve_workers("serial") == "serial"  # config wins over env


def test_persistent_serial_when_one_job(monkeypatch):
    from repro.perf import PersistentWorkerPool

    monkeypatch.delenv(ENV_JOBS_FORCE, raising=False)
    pool = PersistentWorkerPool(1, PerfContext())
    assert not pool.parallel
    pool.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_persistent_fleet_matches_serial_across_syncs(monkeypatch):
    """Warm workers fed snapshot deltas via sync() must fold to exactly
    the serial results, batch after batch."""
    from repro.lang.transform import compose, desugar_program
    from repro.perf import PersistentWorkerPool
    from repro.pins.algorithm import build_template
    from repro.pins.solve import SolveSession, SolveStats, solve
    from repro.pins.termination import terminate
    from repro.suite.sumi import benchmark as sumi_benchmark

    task = sumi_benchmark().task
    desugared = desugar_program(compose(task.program, task.inverse))
    checker = ConstraintChecker(desugared.decls)
    constraints = list(terminate(desugared.body, desugared.decls))
    template = build_template(task)
    session = SolveSession(template.space)
    solutions = solve(session, constraints, checker,
                      [{"n": k} for k in range(4)], m=2, stats=SolveStats())
    assert len(constraints) >= 2 and solutions

    # Batch 1 sees a one-constraint snapshot; batch 2 arrives after a
    # sync() shipping the rest — mimicking list growth across PINS
    # iterations.
    first = constraints[:1]
    batch1 = [("constraint", 0, sol) for sol in solutions]
    batch2 = [("constraint", i, sol)
              for sol in solutions for i in range(len(constraints))]

    serial_checker = ConstraintChecker(desugared.decls)
    ctx_serial = PerfContext(checker=serial_checker, constraints=first)
    import repro.perf.pool as pool_mod
    pool_mod._CTX = ctx_serial
    expect1 = [pool_mod._run_task(t) for t in batch1]
    ctx_serial.constraints = tuple(constraints)
    expect2 = [pool_mod._run_task(t) for t in batch2]

    monkeypatch.setenv(ENV_JOBS_FORCE, "1")
    fleet = PersistentWorkerPool(2, PerfContext(checker=checker,
                                                constraints=first))
    assert fleet.parallel
    try:
        got1 = fleet.map_ordered(batch1)
        fleet.sync(constraints, ())
        got2 = fleet.map_ordered(batch2)
    finally:
        fleet.close()
    assert got1 == expect1
    assert got2 == expect2
