"""Pickle round-trips for everything the worker pool ships across forks.

Terms are hash-consed: ``Term.__reduce__`` re-conses through
``Term.__new__``, so unpickling must return the *same* object in a
process that already interned the term — identity, not just equality.
"""

import pickle

from repro.pins.template import Solution
from repro.smt import (
    ARR,
    BOOL,
    INT,
    mk_add,
    mk_and,
    mk_app,
    mk_eq,
    mk_int,
    mk_le,
    mk_not,
    mk_select,
    mk_store,
    mk_var,
)
from repro.smt.models import Model
from repro.smt.terms import array_sort, uninterpreted_sort


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_term_identity_preserved():
    x = mk_var("x", INT)
    term = mk_and(mk_le(mk_int(0), x), mk_not(mk_eq(x, mk_int(3))))
    assert roundtrip(term) is term


def test_app_and_array_term_identity():
    A = mk_var("A", ARR)
    i = mk_var("i", INT)
    term = mk_eq(mk_select(mk_store(A, i, mk_int(1)), i),
                 mk_app("f", [mk_add(i, mk_int(2))], INT))
    assert roundtrip(term) is term


def test_sort_roundtrip():
    for sort in (INT, BOOL, ARR, array_sort(INT),
                 uninterpreted_sort("blob")):
        assert roundtrip(sort) is sort


def test_uninterpreted_sorted_var_roundtrip():
    s = uninterpreted_sort("stream")
    v = mk_var("st", s)
    w = roundtrip(v)
    assert w is v and w.sort is s


def test_model_roundtrip_preserves_values():
    x = mk_var("x", INT)
    A = mk_var("A", ARR)
    model = Model()
    model.int_values[x] = 5
    model.arrays[A] = {0: 1, 3: -2}
    model.app_table[("f", 1)] = 9
    out = roundtrip(model)
    assert out.int_values[x] == 5  # same term key resolves
    assert out.arrays[A] == {0: 1, 3: -2}
    assert out.app_table[("f", 1)] == 9


def test_solution_roundtrip():
    from repro.lang.ast import Var

    sol = Solution(exprs=(("h1", Var("x")),), preds=(("p1", ()),))
    out = roundtrip(sol)
    assert out.key == sol.key
    assert out.expr_map == sol.expr_map
