"""Round-trip and bounded-checking tests."""

from repro.lang.parser import parse_program
from repro.pins.spec import InversionSpec
from repro.suite.sumi import GROUND_TRUTH, PROGRAM
from repro.suite.vector_shift import benchmark as vshift_benchmark
from repro.validate.bmc import BmcBounds, bounded_check, enumerate_inputs
from repro.validate.roundtrip import round_trip_once, validate_inverse

SPEC = InversionSpec(scalar_pairs=(("n", "ip"),))


def test_round_trip_once_correct_inverse():
    assert round_trip_once(PROGRAM, GROUND_TRUTH, SPEC, {"n": 5})


def test_round_trip_once_detects_wrong_inverse():
    wrong = parse_program("""
    program w [int s; int ip; int sp] {
      ip := s;
      out(ip);
    }
    """)
    assert not round_trip_once(PROGRAM, wrong, SPEC, {"n": 3})


def test_validate_inverse_report():
    report = validate_inverse(PROGRAM, GROUND_TRUTH, SPEC,
                              [{"n": k} for k in range(6)])
    assert report.ok and report.passed == 6


def test_validate_skips_precondition_failures():
    report = validate_inverse(PROGRAM, GROUND_TRUTH, SPEC,
                              [{"n": -1}, {"n": 2}])
    assert report.skipped == 1  # assume(n >= 0) rejects n = -1
    assert report.ok


def test_validate_diverging_candidate_fails():
    diverging = parse_program("""
    program w [int s; int ip; int sp] {
      ip := 0;
      while (0 < 1) { ip := ip + 1; }
      out(ip);
    }
    """)
    report = validate_inverse(PROGRAM, diverging, SPEC, [{"n": 1}], fuel=500)
    assert not report.ok and report.errors


def test_enumerate_inputs_covers_bounds():
    bench = vshift_benchmark()
    bounds = BmcBounds(array_size=1, value_range=(0, 1), scalar_range=(0, 1))
    cases = list(enumerate_inputs(bench.task.program, bench.task.spec, bounds))
    # lengths 0 and 1; for length 1: 2 values per array x 2 arrays x dx,dy in 0..1
    assert any(case["n"] == 0 for case in cases)
    assert any(case["n"] == 1 for case in cases)
    lengths = {case["n"] for case in cases}
    assert lengths == {0, 1}


def test_bounded_check_ground_truth():
    bench = vshift_benchmark()
    task = bench.task
    bounds = BmcBounds(array_size=2, value_range=(0, 1), scalar_range=(0, 1),
                       max_cases=500)
    result = bounded_check(task.program, bench.ground_truth, task.spec,
                           bounds, task.externs)
    assert result.ok
    assert result.cases > 10


def test_bounded_check_catches_off_by_one():
    bench = vshift_benchmark()
    task = bench.task
    wrong = parse_program("""
    program w [array X; array Y; int n; int dx; int dy;
               array Xp; array Yp; int ip] {
      ip := 0;
      while (ip < n) {
        Xp := upd(Xp, ip, sel(X, ip) + dx);
        Yp := upd(Yp, ip, sel(Y, ip) - dy);
        ip := ip + 1;
      }
      out(Xp, Yp, ip);
    }
    """)
    bounds = BmcBounds(array_size=2, value_range=(0, 1), scalar_range=(0, 1),
                       max_cases=500)
    result = bounded_check(task.program, wrong, task.spec, bounds, task.externs)
    assert not result.ok
